/**
 * @file
 * Unit tests for the snapshot read API.
 *
 * The cursor conformance suite runs every PostingCursor case against
 * all three representations — a raw sorted DocId array, the delta +
 * varint block encoding, and the bit-packed SIMD block encoding of
 * posting_block.hh — so none can drift apart. Block-specific edge
 * cases (block-boundary seekGE, max-width deltas, 1/127/128/129
 * posting lists, skip-entry layout), randomized cross-representation
 * equivalence, scalar-vs-SIMD lockstep fuzzing of the packed decoder
 * and the intersection kernel, and the no-decode metadata contract
 * follow, then the IndexSnapshot sealing/segment tests
 * (index/index_snapshot.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "index/index_snapshot.hh"
#include "index/posting_block.hh"
#include "index/posting_cursor.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

// ----------------------------------------------------------------------
// Cursor conformance: every case runs for both representations.
// ----------------------------------------------------------------------

enum class Rep { Raw, Varint, Packed };

/** Owns one posting list's storage in any form; vends cursors. */
struct CursorSource
{
    std::vector<DocId> docs;
    std::vector<std::uint8_t> bytes;
    std::vector<SkipEntry> skip_entries;
    Rep rep = Rep::Raw;

    CursorSource(Rep r, std::vector<DocId> d)
        : docs(std::move(d)), rep(r)
    {
        if (rep == Rep::Varint)
            encodePostings(docs.data(), docs.size(), bytes,
                           skip_entries);
        else if (rep == Rep::Packed)
            encodePostingsPacked(docs.data(), docs.size(), bytes,
                                 skip_entries);
    }

    PostingCursor
    cursor() const
    {
        if (rep == Rep::Raw)
            return PostingCursor(docs.data(), docs.size());
        return PostingCursor(
            bytes.data(),
            skip_entries.empty() ? nullptr : skip_entries.data(),
            static_cast<std::uint32_t>(skip_entries.size()),
            static_cast<std::uint32_t>(docs.size()),
            rep == Rep::Packed ? PostingCodec::Packed
                               : PostingCodec::Varint);
    }
};

class CursorConformance : public ::testing::TestWithParam<Rep>
{
  protected:
    CursorSource
    make(std::vector<DocId> docs) const
    {
        return CursorSource(GetParam(), std::move(docs));
    }
};

INSTANTIATE_TEST_SUITE_P(
    Representations, CursorConformance,
    ::testing::Values(Rep::Raw, Rep::Varint, Rep::Packed),
    [](const ::testing::TestParamInfo<Rep> &info) {
        switch (info.param) {
          case Rep::Raw: return "Raw";
          case Rep::Varint: return "Varint";
          case Rep::Packed: return "Packed";
        }
        return "Unknown";
    });

TEST_P(CursorConformance, EmptyListIsExhausted)
{
    CursorSource src = make({});
    PostingCursor cursor = src.cursor();
    EXPECT_FALSE(cursor.valid());
    EXPECT_EQ(cursor.count(), 0u);
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_FALSE(cursor.seekGE(0));
    EXPECT_TRUE(cursor.toDocSet().empty());
}

TEST_P(CursorConformance, SingleDoc)
{
    CursorSource src = make({42});
    PostingCursor cursor = src.cursor();
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.doc(), 42u);
    EXPECT_EQ(cursor.count(), 1u);
    EXPECT_EQ(cursor.remaining(), 1u);
    cursor.next();
    EXPECT_FALSE(cursor.valid());
    EXPECT_EQ(cursor.remaining(), 0u);
}

TEST_P(CursorConformance, ForwardIteration)
{
    CursorSource src = make({1, 4, 9});
    PostingCursor cursor = src.cursor();
    std::vector<DocId> seen;
    for (; cursor.valid(); cursor.next())
        seen.push_back(cursor.doc());
    EXPECT_EQ(seen, (std::vector<DocId>{1, 4, 9}));
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_EQ(cursor.count(), 3u); // count is total, not remaining
}

TEST_P(CursorConformance, SeekGE)
{
    CursorSource src = make({2, 5, 8, 20, 21, 40});
    PostingCursor cursor = src.cursor();

    ASSERT_TRUE(cursor.seekGE(5)); // exact hit
    EXPECT_EQ(cursor.doc(), 5u);
    ASSERT_TRUE(cursor.seekGE(5)); // no-op on current
    EXPECT_EQ(cursor.doc(), 5u);
    ASSERT_TRUE(cursor.seekGE(9)); // between values
    EXPECT_EQ(cursor.doc(), 20u);
    ASSERT_TRUE(cursor.seekGE(1)); // backwards target: no-op
    EXPECT_EQ(cursor.doc(), 20u);
    ASSERT_TRUE(cursor.seekGE(40)); // last element
    EXPECT_EQ(cursor.doc(), 40u);
    EXPECT_FALSE(cursor.seekGE(41)); // past end exhausts
    EXPECT_FALSE(cursor.valid());
    EXPECT_FALSE(cursor.seekGE(0)); // stays exhausted
}

TEST_P(CursorConformance, SeekGEOnLongList)
{
    std::vector<DocId> docs(10000);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(3 * d);
    CursorSource src = make(std::move(docs));
    PostingCursor cursor = src.cursor();
    ASSERT_TRUE(cursor.seekGE(14998)); // 3*4999=14997 < 14998
    EXPECT_EQ(cursor.doc(), 15000u);
    ASSERT_TRUE(cursor.seekGE(29997));
    EXPECT_EQ(cursor.doc(), 29997u);
    EXPECT_EQ(cursor.remaining(), 1u);
}

TEST_P(CursorConformance, ToDocSetDrainsFromCurrentPosition)
{
    CursorSource src = make({1, 2, 3, 4});
    PostingCursor cursor = src.cursor();
    cursor.next();
    EXPECT_EQ(cursor.toDocSet(), (std::vector<DocId>{2, 3, 4}));
    EXPECT_FALSE(cursor.valid());
}

TEST_P(CursorConformance, ExactlyOneBlock)
{
    std::vector<DocId> docs(posting_block_docs);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(2 * d + 1);
    CursorSource src = make(docs);
    if (GetParam() != Rep::Raw)
        EXPECT_TRUE(src.skip_entries.empty()); // first block: no skip
    PostingCursor cursor = src.cursor();
    EXPECT_EQ(cursor.toDocSet(), docs);
}

TEST_P(CursorConformance, OneBlockPlusOne)
{
    std::vector<DocId> docs(posting_block_docs + 1);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(5 * d);
    CursorSource src = make(docs);
    if (GetParam() != Rep::Raw) {
        ASSERT_EQ(src.skip_entries.size(), 1u);
        EXPECT_EQ(src.skip_entries[0].first_doc, docs.back());
    }
    PostingCursor cursor = src.cursor();
    std::size_t walked = 0;
    for (; cursor.valid(); cursor.next())
        ++walked;
    EXPECT_EQ(walked, docs.size());
}

TEST_P(CursorConformance, RemainingAcrossBlockBoundary)
{
    std::vector<DocId> docs(3 * posting_block_docs + 7);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(d);
    CursorSource src = make(docs);
    PostingCursor cursor = src.cursor();
    for (std::size_t step = 0; cursor.valid(); cursor.next(), ++step)
        ASSERT_EQ(cursor.remaining(), docs.size() - step);
    EXPECT_EQ(cursor.remaining(), 0u);
}

TEST_P(CursorConformance, SeekGEAtBlockBoundaries)
{
    // Three full blocks with stride 10, so block boundaries sit at
    // known docs and there are gaps to land in.
    const std::size_t n = 3 * posting_block_docs;
    std::vector<DocId> docs(n);
    for (std::size_t d = 0; d < n; ++d)
        docs[d] = static_cast<DocId>(10 * d);
    CursorSource src = make(docs);

    const DocId second_first = docs[posting_block_docs];
    const DocId third_first = docs[2 * posting_block_docs];

    {
        // Exactly the first doc of a later block.
        PostingCursor cursor = src.cursor();
        ASSERT_TRUE(cursor.seekGE(second_first));
        EXPECT_EQ(cursor.doc(), second_first);
    }
    {
        // Just above a block's last doc: lands on the next block's
        // first.
        PostingCursor cursor = src.cursor();
        ASSERT_TRUE(cursor.seekGE(second_first - 9));
        EXPECT_EQ(cursor.doc(), second_first);
        ASSERT_TRUE(cursor.seekGE(third_first - 9));
        EXPECT_EQ(cursor.doc(), third_first);
    }
    {
        // Just below a later block's first doc.
        PostingCursor cursor = src.cursor();
        ASSERT_TRUE(cursor.seekGE(third_first - 1));
        EXPECT_EQ(cursor.doc(), third_first);
    }
    {
        // Into the middle of the last block, then past the end.
        PostingCursor cursor = src.cursor();
        ASSERT_TRUE(cursor.seekGE(third_first + 15));
        EXPECT_EQ(cursor.doc(), third_first + 20);
        EXPECT_FALSE(cursor.seekGE(docs.back() + 1));
        EXPECT_FALSE(cursor.valid());
    }
    {
        // Walk to the last doc of block 0, then step across the
        // boundary with next().
        PostingCursor cursor = src.cursor();
        ASSERT_TRUE(cursor.seekGE(second_first - 10));
        EXPECT_EQ(cursor.doc(), second_first - 10);
        cursor.next();
        ASSERT_TRUE(cursor.valid());
        EXPECT_EQ(cursor.doc(), second_first);
    }
}

TEST_P(CursorConformance, MaxDeltaVarints)
{
    // Deltas near 2^32 need 5-byte varints; the doc space endpoints
    // must round-trip exactly.
    const DocId max_doc = invalid_doc - 1; // 0xfffffffe
    CursorSource src = make({0, max_doc});
    PostingCursor cursor = src.cursor();
    EXPECT_EQ(cursor.toDocSet(), (std::vector<DocId>{0, max_doc}));

    CursorSource high = make({max_doc - 1, max_doc});
    PostingCursor cursor2 = high.cursor();
    ASSERT_TRUE(cursor2.seekGE(max_doc));
    EXPECT_EQ(cursor2.doc(), max_doc);
}

TEST_P(CursorConformance, EdgeListLengths)
{
    // 1 / 127 / 128 / 129 postings: the tail-only, almost-full,
    // exactly-one-full-block and full-block-plus-tail shapes.
    for (std::size_t n : {std::size_t(1), posting_block_docs - 1,
                          posting_block_docs,
                          posting_block_docs + 1}) {
        std::vector<DocId> docs(n);
        for (std::size_t d = 0; d < n; ++d)
            docs[d] = static_cast<DocId>(6 * d + 3);
        CursorSource src = make(docs);

        PostingCursor walk = src.cursor();
        EXPECT_EQ(walk.toDocSet(), docs) << "n=" << n;

        PostingCursor seek = src.cursor();
        ASSERT_TRUE(seek.seekGE(docs.back())) << "n=" << n;
        EXPECT_EQ(seek.doc(), docs.back());
        EXPECT_FALSE(seek.seekGE(docs.back() + 1));

        PostingCursor gap = src.cursor();
        ASSERT_TRUE(gap.seekGE(docs.back() - 1)) << "n=" << n;
        EXPECT_EQ(gap.doc(), docs.back());
    }
}

TEST_P(CursorConformance, MaxWidthDeltaInFullBlock)
{
    // 127 consecutive docs, then a jump to the top of the doc space:
    // the full block needs 32-bit deltas (packed width 32, 5-byte
    // varints), and the endpoints must round-trip exactly.
    std::vector<DocId> docs;
    for (DocId d = 0; d < posting_block_docs - 1; ++d)
        docs.push_back(d);
    docs.push_back(invalid_doc - 1); // 0xfffffffe
    CursorSource src = make(docs);

    PostingCursor cursor = src.cursor();
    EXPECT_EQ(cursor.toDocSet(), docs);

    PostingCursor seek = src.cursor();
    ASSERT_TRUE(seek.seekGE(posting_block_docs - 1));
    EXPECT_EQ(seek.doc(), invalid_doc - 1);
}

TEST_P(CursorConformance, BlockViewWalksWholeList)
{
    std::vector<DocId> docs(2 * posting_block_docs + 9);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(11 * d);
    CursorSource src = make(docs);

    PostingCursor cursor = src.cursor();
    std::vector<DocId> seen;
    while (cursor.valid()) {
        const DocId *p = cursor.blockDocs();
        const std::size_t n = cursor.blockRemaining();
        ASSERT_GT(n, 0u);
        EXPECT_EQ(p[0], cursor.doc());
        seen.insert(seen.end(), p, p + n);
        cursor.skipInBlock(n);
    }
    EXPECT_EQ(seen, docs);
    EXPECT_EQ(cursor.remaining(), 0u);
}

TEST_P(CursorConformance, PartialSkipInBlockMatchesNext)
{
    std::vector<DocId> docs(posting_block_docs + 40);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(2 * d + 1);
    CursorSource src = make(docs);

    PostingCursor bulk = src.cursor();
    PostingCursor step = src.cursor();
    while (bulk.valid()) {
        const std::size_t n =
            std::min<std::size_t>(3, bulk.blockRemaining());
        bulk.skipInBlock(n);
        for (std::size_t i = 0; i < n; ++i)
            step.next();
        ASSERT_EQ(bulk.valid(), step.valid());
        if (bulk.valid())
            ASSERT_EQ(bulk.doc(), step.doc());
        ASSERT_EQ(bulk.remaining(), step.remaining());
    }
}

TEST_P(CursorConformance, CopiedCursorContinuesIndependently)
{
    std::vector<DocId> docs(2 * posting_block_docs);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(3 * d);
    CursorSource src = make(docs);
    PostingCursor cursor = src.cursor();
    for (int i = 0; i < 5; ++i)
        cursor.next();

    PostingCursor copy = cursor; // mid-block copy
    EXPECT_EQ(copy.doc(), cursor.doc());
    EXPECT_EQ(copy.remaining(), cursor.remaining());

    // Advancing the copy across the block boundary must not disturb
    // the original.
    ASSERT_TRUE(copy.seekGE(docs[posting_block_docs + 2]));
    EXPECT_EQ(copy.doc(), docs[posting_block_docs + 2]);
    EXPECT_EQ(cursor.doc(), docs[5]);

    cursor = copy; // copy-assign back
    EXPECT_EQ(cursor.doc(), docs[posting_block_docs + 2]);
}

// ----------------------------------------------------------------------
// Codec-level checks and randomized equivalence.
// ----------------------------------------------------------------------

TEST(PostingBlock, SizingPassMatchesEncoder)
{
    Rng rng(11);
    for (int round = 0; round < 20; ++round) {
        std::vector<DocId> docs;
        DocId doc = 0;
        std::size_t n = rng.nextU64() % 1000;
        for (std::size_t i = 0; i < n; ++i) {
            doc += 1 + static_cast<DocId>(rng.nextU64() % 1000);
            docs.push_back(doc);
        }
        std::vector<std::uint8_t> bytes;
        std::vector<SkipEntry> skips;
        encodePostings(docs.data(), docs.size(), bytes, skips);
        EXPECT_EQ(bytes.size(),
                  encodedPostingBytes(docs.data(), docs.size()));
        EXPECT_EQ(skips.size(), postingSkipCount(docs.size()));
        EXPECT_TRUE(validatePostings(
            bytes.data(), static_cast<std::uint32_t>(bytes.size()),
            skips.data(), static_cast<std::uint32_t>(skips.size()),
            static_cast<std::uint32_t>(docs.size())));
    }
}

TEST(PostingBlock, ValidateRejectsMalformedInput)
{
    std::vector<DocId> docs(posting_block_docs + 3);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(4 * d + 2);
    std::vector<std::uint8_t> bytes;
    std::vector<SkipEntry> skips;
    encodePostings(docs.data(), docs.size(), bytes, skips);
    const auto blen = static_cast<std::uint32_t>(bytes.size());
    const auto scount = static_cast<std::uint32_t>(skips.size());
    const auto count = static_cast<std::uint32_t>(docs.size());

    // Wrong counts.
    EXPECT_FALSE(validatePostings(bytes.data(), blen, skips.data(),
                                  scount, count - 1));
    EXPECT_FALSE(validatePostings(bytes.data(), blen - 1, skips.data(),
                                  scount, count));
    // Truncated-to-empty and skip-count mismatch.
    EXPECT_FALSE(validatePostings(bytes.data(), blen, skips.data(), 0,
                                  count));
    // Skip entry disagreeing with the block data.
    std::vector<SkipEntry> bad = skips;
    bad[0].first_doc += 1;
    EXPECT_FALSE(validatePostings(bytes.data(), blen, bad.data(),
                                  scount, count));
    bad = skips;
    bad[0].offset += 1;
    EXPECT_FALSE(validatePostings(bytes.data(), blen, bad.data(),
                                  scount, count));
    // A dangling continuation bit on the last varint must not be
    // read past the buffer.
    std::vector<std::uint8_t> overrun = bytes;
    overrun.back() |= 0x80;
    EXPECT_FALSE(validatePostings(overrun.data(), blen, skips.data(),
                                  scount, count));
}

/** Sorted, duplicate-free random posting list. */
std::vector<DocId>
randomDocs(Rng &rng, std::size_t max_len, DocId max_gap)
{
    std::vector<DocId> docs;
    std::size_t n = rng.nextU64() % (max_len + 1);
    DocId doc = static_cast<DocId>(rng.nextU64() % 50);
    for (std::size_t i = 0; i < n; ++i) {
        docs.push_back(doc);
        DocId gap = 1 + static_cast<DocId>(rng.nextU64() % max_gap);
        if (doc > invalid_doc - 1 - gap)
            break; // stay inside the doc space
        doc += gap;
    }
    return docs;
}

TEST(PostingBlock, RandomizedThreeCodecEquivalence)
{
    Rng rng(20260727);
    for (int round = 0; round < 60; ++round) {
        // Mix densities: dense lists exercise 1-byte deltas and
        // narrow packed widths, sparse ones multi-byte varints, wide
        // packed lanes and skip jumps.
        DocId max_gap = round % 3 == 0   ? 3
                        : round % 3 == 1 ? 700
                                         : 2'000'000;
        std::vector<DocId> docs =
            randomDocs(rng, 4 * posting_block_docs + 50, max_gap);
        CursorSource raw(Rep::Raw, docs);
        CursorSource varint(Rep::Varint, docs);
        CursorSource packed(Rep::Packed, docs);

        // Full-iteration equivalence.
        {
            EXPECT_EQ(raw.cursor().toDocSet(), docs);
            EXPECT_EQ(varint.cursor().toDocSet(), docs);
            EXPECT_EQ(packed.cursor().toDocSet(), docs);
        }

        // Random interleaving of next() and seekGE() must keep all
        // three cursors in lockstep.
        PostingCursor a = raw.cursor();
        PostingCursor b = varint.cursor();
        PostingCursor c = packed.cursor();
        while (a.valid()) {
            ASSERT_TRUE(b.valid());
            ASSERT_TRUE(c.valid());
            ASSERT_EQ(a.doc(), b.doc());
            ASSERT_EQ(a.doc(), c.doc());
            ASSERT_EQ(a.remaining(), b.remaining());
            ASSERT_EQ(a.remaining(), c.remaining());
            if (rng.nextU64() % 2 == 0) {
                a.next();
                b.next();
                c.next();
            } else {
                DocId target =
                    a.doc() + static_cast<DocId>(rng.nextU64() % 5000);
                const bool hit = a.seekGE(target);
                ASSERT_EQ(b.seekGE(target), hit);
                ASSERT_EQ(c.seekGE(target), hit);
            }
        }
        EXPECT_FALSE(b.valid());
        EXPECT_FALSE(c.valid());
        EXPECT_EQ(a.remaining(), 0u);
        EXPECT_EQ(b.remaining(), 0u);
        EXPECT_EQ(c.remaining(), 0u);
    }
}

// ----------------------------------------------------------------------
// Scalar vs SIMD lockstep fuzzing.
// ----------------------------------------------------------------------

TEST(PostingSimd, LevelIsKnown)
{
    const std::string level = postingSimdLevel();
    EXPECT_TRUE(level == "avx2" || level == "sse2" ||
                level == "scalar")
        << level;
#if defined(DSEARCH_FORCE_SCALAR)
    EXPECT_EQ(level, "scalar");
#endif
}

TEST(PostingSimd, PackedDecodeScalarSimdLockstepOnRandomBits)
{
    // The scalar decoder is defined to match the SIMD one bit for bit
    // on ARBITRARY payload bytes (both decode the pad slot), so we
    // can fuzz with raw random bits — no need to construct valid
    // delta streams.
    Rng rng(20260808);
    for (int round = 0; round < 500; ++round) {
        const std::uint8_t width =
            static_cast<std::uint8_t>(rng.nextU64() % 33);
        std::vector<std::uint8_t> blockb;
        const std::uint32_t first =
            static_cast<std::uint32_t>(rng.nextU64());
        blockb.push_back(static_cast<std::uint8_t>(first));
        blockb.push_back(static_cast<std::uint8_t>(first >> 8));
        blockb.push_back(static_cast<std::uint8_t>(first >> 16));
        blockb.push_back(static_cast<std::uint8_t>(first >> 24));
        blockb.push_back(width);
        for (std::size_t i = 0; i < 16u * width; ++i)
            blockb.push_back(
                static_cast<std::uint8_t>(rng.nextU64()));
        ASSERT_EQ(blockb.size(), packedBlockBytes(width));

        DocId simd_out[posting_block_docs];
        DocId scalar_out[posting_block_docs];
        const std::uint8_t *simd_end =
            decodePackedBlock(blockb.data(), simd_out);
        const std::uint8_t *scalar_end =
            decodePackedBlockScalar(blockb.data(), scalar_out);
        ASSERT_EQ(simd_end, blockb.data() + blockb.size());
        ASSERT_EQ(scalar_end, blockb.data() + blockb.size());
        ASSERT_EQ(std::memcmp(simd_out, scalar_out, sizeof simd_out),
                  0)
            << "round " << round << " width " << int(width);
    }
}

TEST(PostingSimd, IntersectScalarSimdLockstep)
{
    Rng rng(20260809);
    for (int round = 0; round < 300; ++round) {
        const DocId max_gap = round % 2 == 0 ? 2 : 900;
        std::vector<DocId> a = randomDocs(rng, 260, max_gap);
        std::vector<DocId> b = randomDocs(rng, 260, max_gap);
        if (round % 17 == 0)
            a.clear(); // empty-side edge
        const std::size_t cap = std::min(a.size(), b.size());

        std::vector<DocId> expected;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(expected));

        std::vector<DocId> simd_out(cap + 1, invalid_doc);
        std::vector<DocId> scalar_out(cap + 1, invalid_doc);
        const std::size_t ns = intersectU32(
            a.data(), a.size(), b.data(), b.size(), simd_out.data());
        const std::size_t nc =
            intersectU32Scalar(a.data(), a.size(), b.data(), b.size(),
                               scalar_out.data());
        ASSERT_EQ(ns, expected.size()) << "round " << round;
        ASSERT_EQ(nc, expected.size()) << "round " << round;
        ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                               simd_out.begin()));
        ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                               scalar_out.begin()));
        // Neither kernel may write past min(na, nb) results.
        EXPECT_EQ(simd_out[cap], invalid_doc);
        EXPECT_EQ(scalar_out[cap], invalid_doc);
    }
}

// ----------------------------------------------------------------------
// Metadata queries never decode posting blocks.
// ----------------------------------------------------------------------

TEST(PostingCursorMetadata, CountNeverDecodesBlocks)
{
    InvertedIndex index;
    TermBlock b;
    b.addTerm("t");
    for (DocId doc = 0; doc < 4 * posting_block_docs; ++doc) {
        b.doc = 3 * doc;
        index.addBlock(b);
    }
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));

    // df via the metadata accessor: no cursor, no decode.
    const std::uint64_t before = postingBlocksDecoded();
    EXPECT_EQ(snapshot.termDocCount("t"), 4 * posting_block_docs);
    EXPECT_EQ(snapshot.termDocCount("missing"), 0u);
    EXPECT_EQ(postingBlocksDecoded(), before);

    // Cursor construction decodes exactly the first block; count()
    // comes from the term header and decodes nothing further.
    PostingCursor cursor = snapshot.cursor("t");
    EXPECT_EQ(postingBlocksDecoded(), before + 1);
    EXPECT_EQ(cursor.count(), 4 * posting_block_docs);
    EXPECT_EQ(cursor.remaining(), 4 * posting_block_docs);
    EXPECT_EQ(postingBlocksDecoded(), before + 1);

    // Walking the list decodes the remaining blocks, one each.
    EXPECT_EQ(cursor.toDocSet().size(), 4 * posting_block_docs);
    EXPECT_EQ(postingBlocksDecoded(), before + 4);
}

// ----------------------------------------------------------------------
// IndexSnapshot sealing and segment access.
// ----------------------------------------------------------------------

TEST(IndexSnapshot, SealSortsAndCompressesPostingsForCursors)
{
    InvertedIndex index;
    index.addBlock(block(7, {"t"}));
    index.addBlock(block(2, {"t"}));
    index.addBlock(block(5, {"t"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));

    EXPECT_TRUE(snapshot.unified());
    EXPECT_EQ(snapshot.segmentCount(), 1u);
    PostingCursor cursor = snapshot.cursor("t");
    EXPECT_EQ(cursor.count(), 3u);
    EXPECT_EQ(cursor.toDocSet(), (std::vector<DocId>{2, 5, 7}));
}

TEST(IndexSnapshot, SealedSegmentIsBlockCompressed)
{
    // A long dense posting list must seal to far fewer bytes than
    // the raw 4 bytes per posting.
    InvertedIndex index;
    TermBlock b;
    b.addTerm("common");
    for (DocId doc = 0; doc < 5000; ++doc) {
        b.doc = doc;
        index.addBlock(b);
    }
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    SegmentReader reader = snapshot.segment(0);
    ASSERT_NE(reader.sealed(), nullptr);
    EXPECT_EQ(reader.postingCount(), 5000u);
    // 1-byte deltas + skip entries: comfortably under half of raw.
    EXPECT_LT(reader.sealed()->postingBytes(),
              5000u * sizeof(DocId) / 2);
    // And the data still reads back exactly.
    EXPECT_EQ(snapshot.cursor("common").remaining(), 5000u);
    PostingCursor cursor = snapshot.cursor("common");
    ASSERT_TRUE(cursor.seekGE(4321));
    EXPECT_EQ(cursor.doc(), 4321u);
}

TEST(IndexSnapshot, ForEachTermIteratesInLexicographicOrder)
{
    InvertedIndex index;
    index.addBlock(block(0, {"delta", "alpha", "mike", "bravo"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::vector<std::string> terms;
    snapshot.forEachTerm(
        [&terms](const std::string &term, PostingCursor) {
            terms.push_back(term);
        });
    EXPECT_EQ(terms, (std::vector<std::string>{"alpha", "bravo",
                                               "delta", "mike"}));
}

TEST(IndexSnapshot, UnknownTermAndEmptySnapshot)
{
    IndexSnapshot empty;
    EXPECT_TRUE(empty.unified());
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.termCount(), 0u);
    EXPECT_FALSE(empty.cursor("anything").valid());

    InvertedIndex index;
    index.addBlock(block(0, {"known"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    EXPECT_FALSE(snapshot.cursor("unknown").valid());
    EXPECT_EQ(snapshot.cursor("unknown").count(), 0u);
}

TEST(IndexSnapshot, ReplicaSetSealsToSegments)
{
    std::vector<InvertedIndex> replicas(3);
    replicas[0].addBlock(block(0, {"a", "shared"}));
    replicas[2].addBlock(block(1, {"b", "shared"}));
    // replicas[1] stays empty but keeps its position.
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(replicas));

    EXPECT_FALSE(snapshot.unified());
    ASSERT_EQ(snapshot.segmentCount(), 3u);
    EXPECT_EQ(snapshot.segment(0).cursor("shared").toDocSet(),
              (std::vector<DocId>{0}));
    EXPECT_TRUE(snapshot.segment(1).empty());
    EXPECT_EQ(snapshot.segment(2).cursor("shared").toDocSet(),
              (std::vector<DocId>{1}));
    EXPECT_FALSE(snapshot.empty());
}

TEST(IndexSnapshot, CopiesShareSegmentsAndOutliveSource)
{
    IndexSnapshot copy;
    {
        InvertedIndex index;
        index.addBlock(block(3, {"alive"}));
        IndexSnapshot original =
            IndexSnapshot::seal(std::move(index));
        copy = original;
    } // original destroyed
    EXPECT_EQ(copy.cursor("alive").toDocSet(),
              (std::vector<DocId>{3}));
}

TEST(IndexSnapshotDeath, UnifiedAccessOnMultiSegmentPanics)
{
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"a"}));
    replicas[1].addBlock(block(1, {"b"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(replicas));
    EXPECT_DEATH(snapshot.cursor("a"), "multi-segment");
    EXPECT_DEATH(snapshot.segment(5), "out of range");
}

} // namespace
} // namespace dsearch
