/**
 * @file
 * Corruption fuzzing for snapshot loading (index/serialize.hh).
 *
 * loadSnapshot() is the recovery path: whatever bytes a crash, a bad
 * disk, or a hostile file put on disk, it must return a clean false
 * with empty outputs — never crash, never OOM, never half-populate.
 * This suite drives it with deterministic (seeded Rng) corruption of
 * real v1, v2 and v3 snapshot images — single bit-flips and
 * truncations at sampled offsets — plus hand-crafted "header bomb"
 * frames whose counts and sizes claim more than the stream holds and
 * malformed bit-packed v3 term records (bad widths, truncated packed
 * payloads, nonzero pad slots) that must fail structural validation
 * without over-reading. Runs under ASan/UBSan via
 * scripts/check_sanitize.sh (the check_asan_ /
 * check_ubsan_snapshot_fuzz ctest gates).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "index/serialize.hh"
#include "util/fnv_hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** A small but structurally complete index: multi-doc posting lists,
 *  several terms, a few documents. */
void
makeSample(InvertedIndex &index, DocTable &docs)
{
    docs.add("/docs/alpha.txt", 120);
    docs.add("/docs/beta.txt", 450);
    docs.add("/docs/gamma.txt", 90);
    docs.add("/docs/delta.txt", 7000);
    index.addBlock(block(0, {"alpha", "common", "edge"}));
    index.addBlock(block(1, {"beta", "common"}));
    index.addBlock(block(2, {"gamma", "common", "edge"}));
    index.addBlock(block(3, {"delta", "common"}));
}

/** Version 1 (legacy raw) snapshot image. */
std::string
v1Bytes()
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveIndex(index, docs, out));
    return out.str();
}

/** Version 2 (sealed varint) snapshot image. */
std::string
v2Bytes()
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    IndexSnapshot snapshot =
        IndexSnapshot::seal(std::move(index), PostingCodec::Varint);
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveSnapshot(snapshot, docs, out));
    return out.str();
}

/**
 * Version 3 (sealed bit-packed) snapshot image, with a posting list
 * long enough to carry full packed blocks (and a skip index), so the
 * fuzzers actually exercise the packed validator and decoder.
 */
std::string
v3Bytes()
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    TermBlock dense;
    dense.addTerm("common");
    for (DocId doc = 4; doc < 4 + 300; ++doc) {
        docs.add("/docs/f" + std::to_string(doc) + ".txt", doc);
        dense.doc = doc;
        index.addBlock(dense);
    }
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveSnapshot(snapshot, docs, out));
    return out.str();
}

/** Assert @p bytes is rejected cleanly: false, outputs left empty. */
void
expectRejected(const std::string &bytes, const std::string &what)
{
    IndexSnapshot snapshot;
    DocTable docs;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_FALSE(loadSnapshot(snapshot, docs, in)) << what;
    EXPECT_TRUE(snapshot.empty()) << what;
    EXPECT_EQ(docs.docCount(), 0u) << what;
}

// Little-endian field patching for the hand-crafted frames.

void
putU32(std::string &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
patchU64(std::string &buf, std::size_t offset, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[offset + i] =
            static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
readU32(const std::string &buf, std::size_t offset)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf[offset + i]))
             << (8 * i);
    return v;
}

/**
 * Frame @p payload as a version-@p version snapshot file with a
 * *correct* checksum, so corruption in the payload reaches the
 * structural validation layer instead of stopping at the checksum.
 */
std::string
frame(std::uint32_t version, const std::string &payload)
{
    std::string bytes = "DSIX";
    putU32(bytes, version);
    putU64(bytes, payload.size());
    bytes += payload;
    // v3 folds the version field into the checksum (serialize.hh);
    // v1/v2 hash the payload alone.
    std::string hashed;
    if (version >= 3)
        putU32(hashed, version);
    hashed += payload;
    putU64(bytes, fnv1a_64(hashed));
    return bytes;
}

class SnapshotFuzz : public ::testing::Test
{
  protected:
    void SetUp() override { setLogLevel(LogLevel::Silent); }
    void TearDown() override { setLogLevel(LogLevel::Info); }
};

/** Flip single bits across the image: every bit of the 24-byte frame
 *  header and checksum region, plus seeded-random samples over the
 *  whole file. No flip may load. */
void
fuzzBitFlips(const std::string &pristine, const char *tag)
{
    ASSERT_FALSE(pristine.empty());

    auto flipAndCheck = [&](std::size_t offset, int bit) {
        std::string bytes = pristine;
        bytes[offset] = static_cast<char>(
            bytes[offset] ^ static_cast<char>(1 << bit));
        expectRejected(bytes, std::string(tag) + " bit flip at offset "
                                  + std::to_string(offset) + " bit "
                                  + std::to_string(bit));
    };

    // Exhaustive over the header (magic, version, payload_size) and
    // the checksum trailer — the fields that steer allocation.
    for (std::size_t offset = 0; offset < 16; ++offset)
        for (int bit = 0; bit < 8; ++bit)
            flipAndCheck(offset, bit);
    for (std::size_t offset = pristine.size() - 8;
         offset < pristine.size(); ++offset)
        for (int bit = 0; bit < 8; ++bit)
            flipAndCheck(offset, bit);

    // Sampled over the payload.
    Rng rng(0xb17f11b5);
    for (int i = 0; i < 300; ++i) {
        std::size_t offset = static_cast<std::size_t>(
            rng.uniform(0, pristine.size() - 1));
        int bit = static_cast<int>(rng.uniform(0, 7));
        flipAndCheck(offset, bit);
    }
}

/** Truncate the image at every short length and at sampled longer
 *  lengths. No truncation may load. */
void
fuzzTruncations(const std::string &pristine, const char *tag)
{
    auto truncateAndCheck = [&](std::size_t length) {
        expectRejected(pristine.substr(0, length),
                       std::string(tag) + " truncated to "
                           + std::to_string(length) + " bytes");
    };

    // Every prefix of the header region, and every "almost complete"
    // length (checksum partially missing).
    for (std::size_t length = 0;
         length < std::min<std::size_t>(32, pristine.size()); ++length)
        truncateAndCheck(length);
    for (std::size_t cut = 1;
         cut <= std::min<std::size_t>(9, pristine.size()); ++cut)
        truncateAndCheck(pristine.size() - cut);

    Rng rng(0x7c5c47e);
    for (int i = 0; i < 100; ++i)
        truncateAndCheck(static_cast<std::size_t>(
            rng.uniform(0, pristine.size() - 1)));
}

TEST_F(SnapshotFuzz, V1BitFlipsNeverLoad) { fuzzBitFlips(v1Bytes(), "v1"); }

TEST_F(SnapshotFuzz, V2BitFlipsNeverLoad) { fuzzBitFlips(v2Bytes(), "v2"); }

TEST_F(SnapshotFuzz, V1TruncationsNeverLoad)
{
    fuzzTruncations(v1Bytes(), "v1");
}

TEST_F(SnapshotFuzz, V2TruncationsNeverLoad)
{
    fuzzTruncations(v2Bytes(), "v2");
}

TEST_F(SnapshotFuzz, V3BitFlipsNeverLoad) { fuzzBitFlips(v3Bytes(), "v3"); }

TEST_F(SnapshotFuzz, V3TruncationsNeverLoad)
{
    fuzzTruncations(v3Bytes(), "v3");
}

TEST_F(SnapshotFuzz, PristineImagesStillLoad)
{
    // The fuzzers above prove corruption is rejected; this pins that
    // the fixtures themselves are valid (a broken fixture would make
    // every rejection assertion pass vacuously).
    for (const std::string &bytes : {v1Bytes(), v2Bytes()}) {
        IndexSnapshot snapshot;
        DocTable docs;
        std::istringstream in(bytes, std::ios::binary);
        EXPECT_TRUE(loadSnapshot(snapshot, docs, in));
        EXPECT_EQ(docs.docCount(), 4u);
        EXPECT_FALSE(snapshot.empty());
    }
    IndexSnapshot snapshot;
    DocTable docs;
    std::istringstream in(v3Bytes(), std::ios::binary);
    EXPECT_TRUE(loadSnapshot(snapshot, docs, in));
    EXPECT_EQ(docs.docCount(), 304u);
    EXPECT_EQ(snapshot.cursor("common").count(), 304u);
}

TEST_F(SnapshotFuzz, HugePayloadSizeFailsWithoutAllocating)
{
    // payload_size lives at offset 8; claim up to an exabyte. The
    // loader must fail at end-of-stream, not allocate up front (ASan
    // would abort on the attempt; plain builds would OOM).
    for (std::uint64_t bomb :
         {~0ull, 1ull << 62, 1ull << 40, 1ull << 32}) {
        std::string bytes = v2Bytes();
        patchU64(bytes, 8, bomb);
        expectRejected(bytes, "payload_size bomb "
                                  + std::to_string(bomb));
    }
}

TEST_F(SnapshotFuzz, HugeDocCountFailsBeforeTableAllocation)
{
    // Valid checksum, hostile payload: doc_count claims 2^60 records
    // in a 16-byte payload. The doc-count cap must fire before any
    // table is sized from it. Applies to both versions (shared doc
    // section).
    for (std::uint32_t version : {1u, 2u}) {
        std::string payload;
        putU64(payload, 1ull << 60); // doc_count
        putU64(payload, 0);          // filler
        expectRejected(frame(version, payload),
                       "doc_count bomb v" + std::to_string(version));
    }
}

TEST_F(SnapshotFuzz, HugeTermCountV1FailsBeforeTableAllocation)
{
    std::string payload;
    putU64(payload, 0);          // doc_count
    putU64(payload, 1ull << 60); // term_count
    expectRejected(frame(1, payload), "v1 term_count bomb");
}

TEST_F(SnapshotFuzz, HugeTermCountV2FailsBeforeTableAllocation)
{
    // Reuse the real file's block_docs value so the frame fails on
    // the term count, not on an unrelated block-size mismatch.
    std::string real = v2Bytes();
    std::uint32_t block_docs = readU32(real, 16 + 8);

    std::string payload;
    putU64(payload, 0);          // doc_count
    putU32(payload, block_docs);
    putU64(payload, 1ull << 60); // term_count
    expectRejected(frame(2, payload), "v2 term_count bomb");
}

TEST_F(SnapshotFuzz, HugeByteLenV2FailsBeforeArenaAllocation)
{
    std::string real = v2Bytes();
    std::uint32_t block_docs = readU32(real, 16 + 8);

    // One term whose posting block claims 4 GiB of bytes that are
    // not there: the record scan must fail on stream bounds before
    // the arena is reserved.
    std::string payload;
    putU64(payload, 0); // doc_count
    putU32(payload, block_docs);
    putU64(payload, 1);    // term_count
    putU32(payload, 1);    // term length
    payload.push_back('t');
    putU32(payload, 1);          // doc_count of the list
    putU32(payload, 0xffffffff); // byte_len bomb
    expectRejected(frame(2, payload), "v2 byte_len bomb");
}

/**
 * A v3 payload holding one hand-built 128-doc term record: empty doc
 * table, then term "t" with the given packed block bytes. 128 docs is
 * exactly one full (packed) block, so there is no skip index and no
 * varint tail — whatever @p blocks holds is what the packed validator
 * sees.
 */
std::string
v3PackedTermPayload(const std::string &blocks)
{
    std::string payload;
    putU64(payload, 0); // doc_count
    putU32(payload, 128); // block_docs (posting_block_docs)
    putU64(payload, 1); // term_count
    putU32(payload, 1); // term length
    payload.push_back('t');
    putU32(payload, 128); // doc_count of the list
    putU32(payload, static_cast<std::uint32_t>(blocks.size()));
    payload += blocks;
    return payload;
}

/** One packed block: u32 first_doc, u8 width, @p body payload bytes. */
std::string
packedBlock(std::uint32_t first_doc, std::uint8_t width,
            std::string body)
{
    std::string block;
    putU32(block, first_doc);
    block.push_back(static_cast<char>(width));
    block += body;
    return block;
}

TEST_F(SnapshotFuzz, V3PackedWidthBombRejected)
{
    // Width 33 cannot encode a u32 delta; the validator must reject
    // it even though the byte length (5 + 16*33) is self-consistent.
    expectRejected(
        frame(3, v3PackedTermPayload(
                     packedBlock(0, 33, std::string(16 * 33, '\0')))),
        "v3 packed width 33");
    // Width 255: the size check alone must not be fooled either.
    expectRejected(
        frame(3, v3PackedTermPayload(
                     packedBlock(0, 255, std::string(16 * 255, '\0')))),
        "v3 packed width 255");
}

TEST_F(SnapshotFuzz, V3PackedTruncatedPayloadRejected)
{
    // A width-4 block owes 16*4 payload bytes; every shorter payload
    // must fail validation before any decoder reads past byte_len.
    for (std::size_t have : {std::size_t(0), std::size_t(1),
                             std::size_t(16 * 4 - 1)}) {
        expectRejected(
            frame(3, v3PackedTermPayload(
                         packedBlock(0, 4, std::string(have, '\0')))),
            "v3 packed payload truncated to "
                + std::to_string(have) + " bytes");
    }
    // Header-only block (no width byte at all).
    std::string header_only;
    putU32(header_only, 0);
    expectRejected(frame(3, v3PackedTermPayload(header_only)),
                   "v3 packed block without width byte");
}

TEST_F(SnapshotFuzz, V3PackedNonzeroPadRejected)
{
    // Slot 0 of a packed block is padding and must encode 0 (the
    // canonical form the scalar/SIMD decoders agree on); a width-1
    // block with the pad bit set must be rejected.
    std::string body(16, '\0');
    body[0] = '\x01'; // lane 0, word 0, bit 0 = value slot 0
    expectRejected(frame(3, v3PackedTermPayload(packedBlock(0, 1,
                                                            body))),
                   "v3 packed nonzero pad");
}

TEST_F(SnapshotFuzz, V3PackedOverflowingDocsRejected)
{
    // first_doc near the DocId ceiling with max-width deltas walks
    // past 2^32; the validator accumulates in 64 bits and must
    // reject the wraparound rather than accept a non-ascending list.
    std::string body(16 * 32, '\xff');
    expectRejected(
        frame(3, v3PackedTermPayload(
                     packedBlock(0xfffffff0u, 32, body))),
        "v3 packed doc overflow");
}

TEST_F(SnapshotFuzz, HugeSkipCountV2FailsBeforeReserve)
{
    std::string real = v2Bytes();
    std::uint32_t block_docs = readU32(real, 16 + 8);

    // A term claiming ~2^31 postings implies a skip index of millions
    // of entries; with a 1-byte block section the skip-count cap must
    // fire before the reserve.
    std::string payload;
    putU64(payload, 0); // doc_count
    putU32(payload, block_docs);
    putU64(payload, 1); // term_count
    putU32(payload, 1); // term length
    payload.push_back('t');
    putU32(payload, 0x7fffffff); // posting count bomb
    putU32(payload, 1);          // byte_len
    payload.push_back('\x01');   // the one "block" byte
    expectRejected(frame(2, payload), "v2 skip_count bomb");
}

} // namespace
} // namespace dsearch
