/**
 * @file
 * Unit tests for the query planner (search/plan.hh): Query AST
 * canonicalization at parse time (flatten + dedupe), De Morgan
 * push-down into the Diff-only plan form, conjunction hoisting,
 * canonical child ordering, df-based execution ordering, fingerprint
 * stability across textual variants and statistics, matchesEmpty and
 * scoreTerms derivation.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "search/operators.hh"
#include "search/plan.hh"
#include "search/ranked.hh"

namespace dsearch {
namespace {

QueryPlan
plan(const std::string &text)
{
    Query query = Query::parse(text);
    EXPECT_TRUE(query.valid()) << text;
    return QueryPlan::compile(query);
}

// ---------------------------------------------------------------
// Satellite 1: Query AST canonicalization at parse time.

TEST(QueryCanonicalize, FlattensNestedAnd)
{
    Query q = Query::parse("a AND (b AND c)");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::And);
    ASSERT_EQ(q.root().children.size(), 3u);
    EXPECT_EQ(q.toString(), "(a AND b AND c)");
}

TEST(QueryCanonicalize, FlattensNestedOr)
{
    Query q = Query::parse("(a OR b) OR (c OR d)");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::Or);
    ASSERT_EQ(q.root().children.size(), 4u);
    EXPECT_EQ(q.toString(), "(a OR b OR c OR d)");
}

TEST(QueryCanonicalize, DeduplicatesOperandsKeepingFirstAppearance)
{
    // The motivating bug: `a AND a AND (b AND c)` used to keep the
    // duplicate and the nesting.
    Query q = Query::parse("a AND a AND (b AND c)");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.toString(), "(a AND b AND c)");

    EXPECT_EQ(Query::parse("b AND a AND b").toString(), "(b AND a)");
    EXPECT_EQ(Query::parse("a OR a OR a").toString(), "a");
}

TEST(QueryCanonicalize, SingletonCollapses)
{
    // Dedupe down to one operand erases the connective entirely.
    EXPECT_EQ(Query::parse("a AND a").toString(), "a");
    EXPECT_EQ(Query::parse("(a OR a) AND (a OR a)").toString(), "a");
}

TEST(QueryCanonicalize, StructuralDuplicatesAreDetected)
{
    // Dedupe is structural, not textual.
    EXPECT_EQ(Query::parse("(a OR b) AND (a OR b)").toString(),
              "(a OR b)");
    EXPECT_EQ(
        Query::parse("(NOT a) AND (NOT a) AND b").toString(),
        "((NOT a) AND b)");
}

TEST(QueryCanonicalize, NotIsLeftUntouched)
{
    // Double negation survives in the AST (the planner cancels it);
    // distinct operands keep their order.
    EXPECT_EQ(Query::parse("NOT NOT a").toString(),
              "(NOT (NOT a))");
    EXPECT_EQ(Query::parse("b AND a").toString(), "(b AND a)");
}

// ---------------------------------------------------------------
// Planner structure: De Morgan push-down and conjunction hoisting.

TEST(QueryPlanStructure, TermCompilesToTermLeaf)
{
    QueryPlan p = plan("alpha");
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.root().kind, PlanNode::Kind::Term);
    EXPECT_EQ(p.toString(), "alpha");
}

TEST(QueryPlanStructure, BareNotBecomesDiffAgainstUniverse)
{
    EXPECT_EQ(plan("NOT a").toString(), "(* \\ a)");
}

TEST(QueryPlanStructure, DoubleNegationCancels)
{
    QueryPlan p = plan("NOT NOT a");
    EXPECT_EQ(p.root().kind, PlanNode::Kind::Term);
    EXPECT_EQ(p.toString(), "a");
    EXPECT_EQ(p.fingerprint(), plan("a").fingerprint());
}

TEST(QueryPlanStructure, DeMorganOverOr)
{
    // NOT (a OR b) == (NOT a) AND (NOT b); the conjunction of two
    // universe differences re-hoists into one Diff against the union.
    QueryPlan p = plan("NOT (a OR b)");
    ASSERT_EQ(p.root().kind, PlanNode::Kind::Diff);
    EXPECT_EQ(p.toString(), "(* \\ (a OR b))");
    EXPECT_EQ(p.fingerprint(),
              plan("(NOT a) AND (NOT b)").fingerprint());
}

TEST(QueryPlanStructure, DeMorganOverAnd)
{
    QueryPlan p = plan("NOT (a AND b)");
    ASSERT_EQ(p.root().kind, PlanNode::Kind::Or);
    EXPECT_EQ(p.toString(), "((* \\ a) OR (* \\ b))");
    EXPECT_EQ(p.fingerprint(),
              plan("(NOT a) OR (NOT b)").fingerprint());
}

TEST(QueryPlanStructure, ConjunctionHoistsNegativesIntoOneDiff)
{
    // a AND NOT b -> Diff(a, b); with two negatives the anti-join
    // runs once against their union.
    EXPECT_EQ(plan("a AND NOT b").toString(), "(a \\ b)");
    EXPECT_EQ(plan("a AND NOT b AND NOT c").toString(),
              "(a \\ (b OR c))");
    EXPECT_EQ(plan("a AND b AND NOT c").toString(),
              "((a AND b) \\ c)");
}

TEST(QueryPlanStructure, CanonicalChildOrderIsSourceIndependent)
{
    // Commuted and re-nested variants compile to the same plan.
    const std::string expected = plan("a AND b AND c").toString();
    EXPECT_EQ(plan("c AND b AND a").toString(), expected);
    EXPECT_EQ(plan("b AND (c AND a)").toString(), expected);
    EXPECT_EQ(plan("a OR b").toString(), plan("b OR a").toString());
}

TEST(QueryPlanStructure, NoNotKindSurvives)
{
    // Negation exists only as Diff: check a deeply mixed query.
    QueryPlan p =
        plan("NOT (a AND (NOT b OR c)) AND NOT NOT (d OR NOT e)");
    std::function<void(const PlanNode &)> walk =
        [&](const PlanNode &node) {
            EXPECT_TRUE(node.kind == PlanNode::Kind::Term
                        || node.kind == PlanNode::Kind::And
                        || node.kind == PlanNode::Kind::Or
                        || node.kind == PlanNode::Kind::Diff
                        || node.kind == PlanNode::Kind::All);
            if (node.kind == PlanNode::Kind::Diff)
                ASSERT_EQ(node.children.size(), 2u);
            for (const PlanNode &child : node.children)
                walk(child);
        };
    walk(p.root());
}

// ---------------------------------------------------------------
// Fingerprints: stable across variants, processes and statistics.

TEST(QueryPlanFingerprint, EqualAcrossTextualVariants)
{
    const std::uint64_t reference = plan("a AND b").fingerprint();
    EXPECT_EQ(plan("b AND a").fingerprint(), reference);
    EXPECT_EQ(plan("a AND (b AND a)").fingerprint(), reference);
    EXPECT_EQ(plan("(a AND b) AND (a AND b)").fingerprint(),
              reference);
    EXPECT_NE(plan("a OR b").fingerprint(), reference);
    EXPECT_NE(plan("a AND c").fingerprint(), reference);
    EXPECT_NE(plan("a").fingerprint(), reference);
}

TEST(QueryPlanFingerprint, IndependentOfDfOrdering)
{
    Query query = Query::parse("rare AND common AND NOT dead");
    ASSERT_TRUE(query.valid());
    QueryPlan plain = QueryPlan::compile(query);
    QueryPlan with_df = QueryPlan::compile(
        query, [](const std::string &term) -> std::size_t {
            return term == "rare" ? 3 : 1000;
        });
    // The fingerprint names the query, not the index it is bound to.
    EXPECT_EQ(with_df.fingerprint(), plain.fingerprint());
    EXPECT_NE(plain.fingerprint(), 0u);
}

TEST(QueryPlanFingerprint, DistinguishesTermBoundaries)
{
    // The per-node terminator keeps concatenation ambiguity out.
    EXPECT_NE(plan("ab").fingerprint(),
              plan("a AND b").fingerprint());
}

// ---------------------------------------------------------------
// df ordering: cheapest AND operand first, stable, order-only.

TEST(QueryPlanDfOrder, AndChildrenSortAscendingByDf)
{
    Query query = Query::parse("a AND b AND c");
    ASSERT_TRUE(query.valid());
    QueryPlan p = QueryPlan::compile(
        query, [](const std::string &term) -> std::size_t {
            if (term == "a")
                return 100;
            if (term == "b")
                return 5;
            return 50;
        });
    EXPECT_EQ(p.toString(), "(b AND c AND a)");
    // Without statistics the canonical (structural) order stands.
    EXPECT_EQ(QueryPlan::compile(query).toString(), "(a AND b AND c)");
}

TEST(QueryPlanDfOrder, DiffOrdersByPositiveBranch)
{
    Query query = Query::parse("x AND (a AND NOT b)");
    ASSERT_TRUE(query.valid());
    // Conjunction hoisting folds this to Diff(And(a, x), b); the df
    // order inside the positive And still applies.
    QueryPlan p = QueryPlan::compile(
        query, [](const std::string &term) -> std::size_t {
            return term == "x" ? 1 : 100;
        });
    EXPECT_EQ(p.toString(), "((x AND a) \\ b)");
}

// ---------------------------------------------------------------
// Derived properties the tiers consume.

TEST(QueryPlanProperties, MatchesEmptyFollowsNotDominance)
{
    EXPECT_FALSE(plan("a").matchesEmpty());
    EXPECT_TRUE(plan("NOT a").matchesEmpty());
    EXPECT_FALSE(plan("NOT NOT a").matchesEmpty());
    EXPECT_TRUE(plan("a OR NOT b").matchesEmpty());
    EXPECT_FALSE(plan("a AND NOT b").matchesEmpty());
    EXPECT_TRUE(plan("NOT (a AND b)").matchesEmpty());
    EXPECT_FALSE(plan("NOT (a OR NOT b)").matchesEmpty());
}

TEST(QueryPlanProperties, ScoreTermsKeepSourceOrderAndParity)
{
    // Source-appearance order, deduplicated, odd-NOT terms excluded —
    // exactly positiveTerms(), the order ranked accumulation needs.
    Query query = Query::parse("beta AND alpha AND NOT dead AND beta");
    ASSERT_TRUE(query.valid());
    QueryPlan p = QueryPlan::compile(query);
    EXPECT_EQ(p.scoreTerms(),
              (std::vector<std::string>{"beta", "alpha"}));
    EXPECT_EQ(p.scoreTerms(), positiveTerms(query.root()));

    // Even-parity (double-negated) terms are positive context.
    Query dn = Query::parse("a AND NOT NOT b");
    ASSERT_TRUE(dn.valid());
    EXPECT_EQ(QueryPlan::compile(dn).scoreTerms(),
              positiveTerms(dn.root()));
}

TEST(QueryPlanProperties, InvalidQueryYieldsInvalidPlan)
{
    Query bad = Query::parse("AND AND");
    EXPECT_FALSE(bad.valid());
    QueryPlan p = QueryPlan::compile(bad);
    EXPECT_FALSE(p.valid());
    EXPECT_EQ(p.fingerprint(), 0u);
    EXPECT_TRUE(p.scoreTerms().empty());
    EXPECT_FALSE(p.matchesEmpty());
    EXPECT_EQ(p.toString(), "<invalid plan>");
}

TEST(QueryPlanProperties, PlansShareStateOnCopy)
{
    QueryPlan a = plan("x AND y");
    QueryPlan b = a; // shared_ptr copy, same operator tree
    EXPECT_EQ(&a.ops(), &b.ops());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

} // namespace
} // namespace dsearch
