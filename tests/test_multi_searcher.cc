/**
 * @file
 * Unit and property tests for parallel multi-index search
 * (search/multi_searcher.hh).
 *
 * The key property: searching the unjoined replica set must give the
 * same answer as searching the joined index, for every query shape —
 * that is what makes Implementation 3 a legitimate design.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "pipeline/thread_pool.hh"
#include "search/multi_searcher.hh"
#include "search/searcher.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

TEST(MultiSearcher, SingleReplicaMatchesPlainSearcher)
{
    std::vector<InvertedIndex> replicas(1);
    replicas[0].addBlock(block(0, {"a"}));
    replicas[0].addBlock(block(1, {"b"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(replicas));

    // A one-segment snapshot is unified: both engines accept it.
    MultiSearcher multi(snapshot, 2);
    Searcher single(snapshot, 2);
    for (const char *text : {"a", "b", "a OR b", "a AND b", "NOT a"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(multi.run(q), single.run(q)) << text;
    }
}

TEST(MultiSearcher, TermSpanningReplicas)
{
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"shared", "only0"}));
    replicas[1].addBlock(block(1, {"shared", "only1"}));
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 2);
    EXPECT_EQ(multi.run(Query::parse("shared")), (DocSet{0, 1}));
    EXPECT_EQ(multi.run(Query::parse("only1")), (DocSet{1}));
}

TEST(MultiSearcher, NotQueryRestrictedPerReplica)
{
    // Docs 0,2 in replica 0; docs 1,3 in replica 1.
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"cat"}));
    replicas[0].addBlock(block(2, {"dog"}));
    replicas[1].addBlock(block(1, {"cat", "dog"}));
    replicas[1].addBlock(block(3, {"fish"}));

    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 4);
    // NOT cat over the full universe = {2, 3}.
    EXPECT_EQ(multi.run(Query::parse("NOT cat")), (DocSet{2, 3}));
    // dog AND NOT cat = {2}.
    EXPECT_EQ(multi.run(Query::parse("dog AND NOT cat")),
              (DocSet{2}));
}

TEST(MultiSearcher, OrphanDocsMatchNotQueries)
{
    // Doc 2 has no terms at all (empty file): in no replica.
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"a"}));
    replicas[1].addBlock(block(1, {"b"}));

    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 3);
    EXPECT_EQ(multi.orphanDocs(), (DocSet{2}));
    EXPECT_EQ(multi.run(Query::parse("NOT a")), (DocSet{1, 2}));
    EXPECT_EQ(multi.run(Query::parse("NOT a AND NOT b")),
              (DocSet{2}));
    EXPECT_TRUE(multi.run(Query::parse("a AND NOT a")).empty());
}

TEST(MultiSearcher, OwnedDocsComputed)
{
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"x"}));
    replicas[0].addBlock(block(5, {"y"}));
    replicas[1].addBlock(block(3, {"z"}));
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 6);
    EXPECT_EQ(multi.ownedDocs(0), (DocSet{0, 5}));
    EXPECT_EQ(multi.ownedDocs(1), (DocSet{3}));
}

TEST(MultiSearcher, InvalidQueryIsEmpty)
{
    std::vector<InvertedIndex> replicas(1);
    replicas[0].addBlock(block(0, {"a"}));
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 1);
    EXPECT_TRUE(multi.run(Query::parse("(")).empty());
}

TEST(MultiSearcher, ParallelThreadsGiveSameAnswer)
{
    std::vector<InvertedIndex> replicas(4);
    for (DocId doc = 0; doc < 100; ++doc) {
        replicas[doc % 4].addBlock(block(
            doc, {"w" + std::to_string(doc % 7),
                  "w" + std::to_string(doc % 11)}));
    }
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)),
                        100);
    Query q = Query::parse("w1 OR (w2 AND NOT w3)");
    DocSet serial = multi.run(q, 1);
    DocSet parallel = multi.run(q, 4);
    EXPECT_EQ(serial, parallel);
    EXPECT_FALSE(serial.empty());
}

TEST(MultiSearcher, PersistentPoolGivesSameAnswer)
{
    std::vector<InvertedIndex> replicas(3);
    for (DocId doc = 0; doc < 60; ++doc) {
        replicas[doc % 3].addBlock(block(
            doc, {"w" + std::to_string(doc % 5),
                  "w" + std::to_string(doc % 9)}));
    }
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)),
                        60);
    ThreadPool pool(2);
    for (const char *text :
         {"w1", "w2 AND w3", "NOT w4", "w0 OR (w1 AND NOT w2)"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(multi.run(q, pool), multi.run(q, 1)) << text;
    }
}

TEST(MultiSearcher, QueryStreamReusesOneCachedPool)
{
    // Regression: run(query, threads) used to construct and tear
    // down a ThreadPool on every call — fatal per-query cost for a
    // server loop. A stream of parallel queries must create exactly
    // one pool.
    std::vector<InvertedIndex> replicas(4);
    for (DocId doc = 0; doc < 80; ++doc)
        replicas[doc % 4].addBlock(
            block(doc, {"w" + std::to_string(doc % 6)}));
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)), 80);
    EXPECT_EQ(multi.poolsCreated(), 0u);

    Query q = Query::parse("w1 OR w2");
    DocSet expected = multi.run(q, 1);
    EXPECT_EQ(multi.poolsCreated(), 0u); // serial path needs no pool
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(multi.run(q, 4), expected);
    EXPECT_EQ(multi.poolsCreated(), 1u);

    // The explicit fallback spawns fresh pools without touching the
    // cached one.
    EXPECT_EQ(multi.runFreshPool(q, 4), expected);
    EXPECT_EQ(multi.poolsCreated(), 1u);
}

TEST(MultiSearcher, CachedPoolSafeAcrossConcurrentQueries)
{
    // Several client threads sharing one searcher: the lazily
    // created cached pool must be created exactly once and produce
    // correct answers under concurrency (TSan-checked in the
    // sanitizer suite).
    std::vector<InvertedIndex> replicas(4);
    for (DocId doc = 0; doc < 120; ++doc)
        replicas[doc % 4].addBlock(
            block(doc, {"w" + std::to_string(doc % 8)}));
    MultiSearcher multi(IndexSnapshot::seal(std::move(replicas)),
                        120);
    Query q = Query::parse("w3 OR (w5 AND NOT w1)");
    DocSet expected = multi.run(q, 1);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&multi, &q, &expected, &mismatches] {
            for (int i = 0; i < 25; ++i)
                if (multi.run(q, 4) != expected)
                    ++mismatches;
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(multi.poolsCreated(), 1u);
}

/**
 * Property: for a real generator run with Implementation 3, querying
 * the replicas equals querying the joined index — across query shapes
 * and replica counts.
 */
class MultiVsJoined : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MultiVsJoined, EquivalentForAllQueryShapes)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(101)).generateInMemory();
    Engine::Result result =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(GetParam())
            .build();

    std::size_t doc_count = result.docs.docCount();
    MultiSearcher multi(result.snapshot, doc_count);

    // Joined reference build over the same corpus.
    Engine::Result joined =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(2, 2, 1)
            .build();
    Searcher reference(joined.snapshot, doc_count);

    // Frequent corpus words: short ranks from the word generator.
    const char *queries[] = {
        "ba",
        "be OR bi",
        "ba AND be",
        "ba AND NOT be",
        "NOT ba",
        "(ba OR be) AND (bi OR bo)",
        "NOT (ba AND be)",
        "missingterm",
        "NOT missingterm",
        "ba be bi",
    };
    for (const char *text : queries) {
        Query q = Query::parse(text);
        ASSERT_TRUE(q.valid()) << text;
        EXPECT_EQ(multi.run(q, 2), reference.run(q))
            << "query '" << text << "' with "
            << GetParam() << " replicas";
    }
}

INSTANTIATE_TEST_SUITE_P(ReplicaCounts, MultiVsJoined,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

} // namespace
} // namespace dsearch
