/**
 * @file
 * Unit tests for the inverted index (index/inverted_index.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "index/inverted_index.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

TEST(InvertedIndex, StartsEmpty)
{
    InvertedIndex index;
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.termCount(), 0u);
    EXPECT_EQ(index.postingCount(), 0u);
    EXPECT_EQ(index.postings("anything"), nullptr);
}

TEST(InvertedIndex, AddBlockCreatesPostings)
{
    InvertedIndex index;
    index.addBlock(block(0, {"alpha", "beta"}));
    index.addBlock(block(1, {"beta", "gamma"}));

    ASSERT_NE(index.postings("beta"), nullptr);
    EXPECT_EQ(*index.postings("beta"), (PostingList{0, 1}));
    EXPECT_EQ(*index.postings("alpha"), (PostingList{0}));
    EXPECT_EQ(index.termCount(), 3u);
    EXPECT_EQ(index.postingCount(), 4u);
}

TEST(InvertedIndex, AddOccurrenceDeduplicates)
{
    InvertedIndex index;
    index.addOccurrence("term", 0);
    index.addOccurrence("term", 0); // duplicate (term, doc)
    index.addOccurrence("term", 1);
    ASSERT_NE(index.postings("term"), nullptr);
    EXPECT_EQ(*index.postings("term"), (PostingList{0, 1}));
    EXPECT_EQ(index.postingCount(), 2u);
}

TEST(InvertedIndex, BlockAndOccurrencePathsAgree)
{
    InvertedIndex en_bloc, immediate;
    en_bloc.addBlock(block(0, {"a", "b"}));
    en_bloc.addBlock(block(1, {"b"}));

    // Occurrence stream with duplicates.
    for (const char *t : {"a", "b", "a", "b"})
        immediate.addOccurrence(t, 0);
    immediate.addOccurrence("b", 1);

    en_bloc.sortPostings();
    immediate.sortPostings();
    EXPECT_TRUE(sameContents(en_bloc, immediate));
}

TEST(InvertedIndex, MergeDisjointDocs)
{
    InvertedIndex a, b;
    a.addBlock(block(0, {"x", "shared"}));
    b.addBlock(block(1, {"y", "shared"}));
    a.merge(std::move(b));

    EXPECT_EQ(a.termCount(), 3u);
    EXPECT_EQ(a.postingCount(), 4u);
    a.sortPostings();
    EXPECT_EQ(*a.postings("shared"), (PostingList{0, 1}));
    EXPECT_EQ(*a.postings("x"), (PostingList{0}));
    EXPECT_EQ(*a.postings("y"), (PostingList{1}));
}

TEST(InvertedIndex, MergeLeavesSourceEmpty)
{
    InvertedIndex a, b;
    b.addBlock(block(0, {"t"}));
    a.merge(std::move(b));
    EXPECT_TRUE(b.empty()); // NOLINT(bugprone-use-after-move): documented
    EXPECT_EQ(b.postingCount(), 0u);
}

TEST(InvertedIndex, MergeIntoEmpty)
{
    InvertedIndex a, b;
    b.addBlock(block(3, {"only"}));
    a.merge(std::move(b));
    ASSERT_NE(a.postings("only"), nullptr);
    EXPECT_EQ(*a.postings("only"), (PostingList{3}));
}

TEST(InvertedIndex, SortPostingsCanonicalizes)
{
    InvertedIndex index;
    index.addBlock(block(5, {"t"}));
    index.addBlock(block(1, {"t"}));
    index.addBlock(block(3, {"t"}));
    index.sortPostings();
    EXPECT_EQ(*index.postings("t"), (PostingList{1, 3, 5}));
}

TEST(InvertedIndex, SameContentsDetectsEquality)
{
    InvertedIndex a, b;
    a.addBlock(block(0, {"p", "q"}));
    b.addBlock(block(0, {"q", "p"})); // different insertion order
    a.sortPostings();
    b.sortPostings();
    EXPECT_TRUE(sameContents(a, b));
    EXPECT_TRUE(sameContents(b, a));
}

TEST(InvertedIndex, SameContentsDetectsDifferences)
{
    InvertedIndex a, b, c, d;
    a.addBlock(block(0, {"p"}));
    b.addBlock(block(1, {"p"}));    // different doc
    c.addBlock(block(0, {"r"}));    // different term
    d.addBlock(block(0, {"p", "q"})); // extra term
    for (InvertedIndex *idx : {&a, &b, &c, &d})
        idx->sortPostings();
    EXPECT_FALSE(sameContents(a, b));
    EXPECT_FALSE(sameContents(a, c));
    EXPECT_FALSE(sameContents(a, d));
    EXPECT_FALSE(sameContents(d, a));
}

TEST(InvertedIndex, ClearResets)
{
    InvertedIndex index;
    index.addBlock(block(0, {"a", "b"}));
    index.clear();
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.postingCount(), 0u);
    EXPECT_EQ(index.postings("a"), nullptr);
}

TEST(InvertedIndex, ForEachTermVisitsAll)
{
    InvertedIndex index;
    index.addBlock(block(0, {"a", "b", "c"}));
    std::vector<std::string> terms;
    index.forEachTerm(
        [&terms](const std::string &term, const PostingList &) {
            terms.push_back(term);
        });
    std::sort(terms.begin(), terms.end());
    EXPECT_EQ(terms, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(InvertedIndex, CloneIsDeepAndEqual)
{
    InvertedIndex index;
    index.addBlock(block(0, {"a", "b"}));
    index.addBlock(block(1, {"b"}));
    InvertedIndex copy = index.clone();

    index.sortPostings();
    copy.sortPostings();
    EXPECT_TRUE(sameContents(index, copy));

    // Mutating the copy must not touch the original.
    copy.addBlock(block(2, {"c"}));
    EXPECT_EQ(copy.termCount(), 3u);
    EXPECT_EQ(index.termCount(), 2u);
    EXPECT_EQ(index.postings("c"), nullptr);
}

TEST(InvertedIndex, MoveSemantics)
{
    InvertedIndex index;
    index.addBlock(block(0, {"m"}));
    InvertedIndex moved = std::move(index);
    ASSERT_NE(moved.postings("m"), nullptr);
    EXPECT_EQ(moved.postingCount(), 1u);
}

TEST(InvertedIndex, EmptyBlockIsNoOp)
{
    InvertedIndex index;
    index.addBlock(block(0, {}));
    EXPECT_TRUE(index.empty());
}

TEST(InvertedIndex, ManyTermsStressGrowth)
{
    InvertedIndex index;
    for (DocId doc = 0; doc < 50; ++doc) {
        // Blocks carry unique terms per file; dedup within block.
        std::vector<std::string> terms;
        for (int t = 0; t < 100; ++t)
            terms.push_back("term" + std::to_string(t * 7 % 400));
        std::sort(terms.begin(), terms.end());
        terms.erase(std::unique(terms.begin(), terms.end()),
                    terms.end());
        index.addBlock(block(doc, std::move(terms)));
    }
    EXPECT_GT(index.termCount(), 0u);
    EXPECT_GT(index.postingCount(), index.termCount());
}

} // namespace
} // namespace dsearch
