/**
 * @file
 * Unit tests for string helpers (util/string_util.hh).
 */

#include <gtest/gtest.h>

#include "util/string_util.hh"

namespace dsearch {
namespace {

TEST(StringUtil, CharClassification)
{
    EXPECT_TRUE(isAsciiAlpha('a'));
    EXPECT_TRUE(isAsciiAlpha('Z'));
    EXPECT_FALSE(isAsciiAlpha('1'));
    EXPECT_FALSE(isAsciiAlpha(' '));
    EXPECT_FALSE(isAsciiAlpha('\xFF'));
    EXPECT_TRUE(isAsciiDigit('0'));
    EXPECT_TRUE(isAsciiDigit('9'));
    EXPECT_FALSE(isAsciiDigit('a'));
}

TEST(StringUtil, ToLowerChar)
{
    EXPECT_EQ(toLowerAscii('A'), 'a');
    EXPECT_EQ(toLowerAscii('Z'), 'z');
    EXPECT_EQ(toLowerAscii('a'), 'a');
    EXPECT_EQ(toLowerAscii('5'), '5');
    EXPECT_EQ(toLowerAscii('['), '[');
}

TEST(StringUtil, ToLowerString)
{
    EXPECT_EQ(toLowerAscii(std::string_view("MiXeD Case 42!")),
              "mixed case 42!");
    EXPECT_EQ(toLowerAscii(std::string_view("")), "");
}

TEST(StringUtil, TrimWhitespace)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nword\r\n"), "word");
    EXPECT_EQ(trim("nospace"), "nospace");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("a b"), "a b");
}

TEST(StringUtil, SplitBasic)
{
    auto fields = split("a/b/c", '/');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b");
    EXPECT_EQ(fields[2], "c");
}

TEST(StringUtil, SplitSkipsEmptyFields)
{
    auto fields = split("//a//b//", '/');
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b");
    EXPECT_TRUE(split("", '/').empty());
    EXPECT_TRUE(split("///", '/').empty());
}

TEST(StringUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(0), "0 B");
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1024), "1.0 KiB");
    EXPECT_EQ(formatBytes(911212544ull), "869.0 MiB");
    EXPECT_EQ(formatBytes(1ull << 30), "1.0 GiB");
}

TEST(StringUtil, FormatDuration)
{
    EXPECT_EQ(formatDuration(46.7), "46.7 s");
    EXPECT_EQ(formatDuration(0.0123), "12.3 ms");
    EXPECT_EQ(formatDuration(0.0000457), "45.7 us");
}

TEST(StringUtil, FormatDouble)
{
    EXPECT_EQ(formatDouble(4.712, 2), "4.71");
    EXPECT_EQ(formatDouble(4.0, 1), "4.0");
    EXPECT_EQ(formatDouble(-0.21, 2), "-0.21");
    EXPECT_EQ(formatDouble(0.85, 0), "1");
}

} // namespace
} // namespace dsearch
