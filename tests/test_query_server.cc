/**
 * @file
 * Unit and concurrency tests for the query-serving loop
 * (search/query_server.hh).
 *
 * The server's contract: every admitted query is answered (even
 * across shutdown), answers agree with the one-shot searchers, and
 * many client threads can submit mixed boolean/ranked traffic
 * against unified and replicated snapshots without racing. The
 * concurrency tests here are part of the TSan suite registered by
 * scripts/check_sanitize.sh (ctest check_tsan_query_server).
 *
 * The overload/deadline/poisoned-query tests at the bottom cover the
 * failure-handling contract (see query_server.hh): shedding policies
 * refuse with counted, resolved futures; expired deadlines are
 * rejected before evaluation; a throwing query is one bad response,
 * not a dead server.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "search/query_server.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** A small hand-built unified corpus: 4 docs over 4 terms. */
class QueryServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int d = 0; d < 4; ++d)
            _docs.add("/f" + std::to_string(d), 1000);
        InvertedIndex index;
        index.addBlock(block(0, {"common", "rare"}));
        index.addBlock(block(1, {"common"}));
        index.addBlock(block(2, {"common", "other"}));
        index.addBlock(block(3, {"common", "rare", "other"}));
        _snapshot = IndexSnapshot::seal(std::move(index));
    }

    IndexSnapshot _snapshot;
    DocTable _docs;
};

TEST_F(QueryServerTest, BooleanMatchesDirectSearcher)
{
    Searcher direct(_snapshot, _docs.docCount());
    QueryServer server(_snapshot, _docs);
    for (const char *text :
         {"common", "rare", "common AND NOT other", "NOT common",
          "rare OR other"}) {
        Query query = Query::parse(text);
        QueryResponse reply = server.submit(query).get();
        EXPECT_TRUE(reply.ok) << text;
        EXPECT_EQ(reply.hits, direct.run(query)) << text;
        EXPECT_GE(reply.latency_sec, 0.0);
    }
}

TEST_F(QueryServerTest, RankedMatchesDirectSearcher)
{
    RankedSearcher direct(_snapshot, _docs);
    QueryServer server(_snapshot, _docs);
    Query query = Query::parse("common OR rare");
    QueryResponse reply = server.submitRanked(query, 3).get();
    ASSERT_TRUE(reply.ok);
    auto expected = direct.topK(query, 3);
    ASSERT_EQ(reply.ranked.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(reply.ranked[i].doc, expected[i].doc);
        EXPECT_DOUBLE_EQ(reply.ranked[i].score, expected[i].score);
    }
}

TEST_F(QueryServerTest, InvalidQueryRejectedNotCrashed)
{
    QueryServer server(_snapshot, _docs);
    QueryResponse reply = server.submit(Query::parse("AND AND")).get();
    EXPECT_FALSE(reply.ok);
    EXPECT_FALSE(reply.error.empty());
    EXPECT_TRUE(reply.hits.empty());
    EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(QueryServerTest, CallbackRunsAlongsideFuture)
{
    QueryServer server(_snapshot, _docs);
    std::atomic<int> called{0};
    std::atomic<std::size_t> seen_hits{0};
    auto future = server.submit(
        Query::parse("common"), [&](const QueryResponse &reply) {
            seen_hits = reply.hits.size();
            ++called;
        });
    QueryResponse reply = future.get();
    server.shutdown(); // callbacks finished once drained
    EXPECT_EQ(called.load(), 1);
    EXPECT_EQ(seen_hits.load(), reply.hits.size());
    EXPECT_EQ(reply.hits.size(), 4u);
}

TEST_F(QueryServerTest, EngineResultHandoff)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(2010)).generateInMemory();
    Engine::Result built =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(2, 2, 1)
            .build();
    Searcher direct(built.snapshot, built.docs.docCount());

    QueryServer server(std::move(built));
    EXPECT_FALSE(server.replicated());
    Query query = Query::parse("ba");
    EXPECT_EQ(server.submit(query).get().hits, direct.run(query));
    EXPECT_GT(server.docCount(), 0u);
}

TEST_F(QueryServerTest, ReplicatedSnapshotServesBoolean)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(2010)).generateInMemory();
    Engine::Result built =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(2, 2)
            .build();
    MultiSearcher direct(built.snapshot, built.docs.docCount());

    QueryServer server(std::move(built));
    EXPECT_TRUE(server.replicated());
    for (const char *text : {"ba", "ba AND be", "NOT ba"}) {
        Query query = Query::parse(text);
        QueryResponse reply = server.submit(query).get();
        EXPECT_TRUE(reply.ok) << text;
        EXPECT_EQ(reply.hits, direct.run(query)) << text;
    }

    // Ranked needs a unified snapshot: refused, not wrong.
    QueryResponse ranked =
        server.submitRanked(Query::parse("ba"), 5).get();
    EXPECT_FALSE(ranked.ok);
    EXPECT_FALSE(ranked.error.empty());
}

TEST_F(QueryServerTest, ManyClientsMixedTraffic)
{
    Searcher direct(_snapshot, _docs.docCount());
    RankedSearcher direct_ranked(_snapshot, _docs);
    const DocSet expect_common = direct.run(Query::parse("common"));
    const DocSet expect_not = direct.run(Query::parse("NOT other"));
    const std::size_t expect_ranked =
        direct_ranked.topK(Query::parse("common OR rare"), 2).size();

    ServerOptions options;
    options.workers = 4;
    options.queue_capacity = 16; // small: exercises back-pressure
    QueryServer server(_snapshot, _docs, options);

    const int clients = 8;
    const int per_client = 50;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (int i = 0; i < per_client; ++i) {
                switch ((c + i) % 3) {
                  case 0: {
                    auto reply =
                        server.submit(Query::parse("common")).get();
                    if (!reply.ok || reply.hits != expect_common)
                        ++mismatches;
                    break;
                  }
                  case 1: {
                    auto reply =
                        server.submit(Query::parse("NOT other")).get();
                    if (!reply.ok || reply.hits != expect_not)
                        ++mismatches;
                    break;
                  }
                  default: {
                    auto reply =
                        server
                            .submitRanked(
                                Query::parse("common OR rare"), 2)
                            .get();
                    if (!reply.ok
                        || reply.ranked.size() != expect_ranked)
                        ++mismatches;
                    break;
                  }
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed,
              static_cast<std::uint64_t>(clients * per_client));
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.latency.count, stats.completed);
    EXPECT_GT(stats.qps, 0.0);
    EXPECT_LE(stats.latency.p50, stats.latency.p95);
    EXPECT_LE(stats.latency.p95, stats.latency.p99);
    EXPECT_LE(stats.latency.p99, stats.latency.max);
}

TEST_F(QueryServerTest, ShutdownDrainsQueuedQueries)
{
    ServerOptions options;
    options.workers = 1;       // serialize: queries pile up queued
    options.queue_capacity = 0; // unbounded so submits never block
    QueryServer server(_snapshot, _docs, options);

    const int queued = 64;
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(queued);
    for (int i = 0; i < queued; ++i)
        futures.push_back(server.submit(Query::parse("common")));

    server.shutdown(); // must answer everything already admitted
    for (auto &future : futures) {
        QueryResponse reply = future.get();
        EXPECT_TRUE(reply.ok);
        EXPECT_EQ(reply.hits.size(), 4u);
    }
    EXPECT_EQ(server.stats().completed,
              static_cast<std::uint64_t>(queued));
}

TEST_F(QueryServerTest, SubmitAfterShutdownRejected)
{
    QueryServer server(_snapshot, _docs);
    server.shutdown();
    EXPECT_FALSE(server.accepting());
    QueryResponse reply = server.submit(Query::parse("common")).get();
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "server has shut down");
    EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(QueryServerTest, ShutdownIdempotentAndDestructorSafe)
{
    QueryServer server(_snapshot, _docs);
    auto future = server.submit(Query::parse("rare"));
    server.shutdown();
    server.shutdown(); // second call is a no-op
    EXPECT_EQ(future.get().hits, (DocSet{0, 3}));
    // Destructor after explicit shutdown must not hang or double-join.
}

TEST_F(QueryServerTest, ResetStatsStartsFreshWindow)
{
    QueryServer server(_snapshot, _docs);
    server.submit(Query::parse("common")).get();
    ASSERT_EQ(server.stats().completed, 1u);
    server.resetStats();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.latency.count, 0u);
    server.submit(Query::parse("common")).get();
    EXPECT_EQ(server.stats().completed, 1u);
}

TEST_F(QueryServerTest, ConcurrentShutdownWhileSubmitting)
{
    // Clients racing a shutdown: every future must resolve, each
    // either served or cleanly rejected — never a broken promise.
    ServerOptions options;
    options.workers = 2;
    QueryServer server(_snapshot, _docs, options);

    std::atomic<int> resolved{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                auto reply =
                    server.submit(Query::parse("common")).get();
                if (reply.ok || reply.error == "server has shut down")
                    ++resolved;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.shutdown();
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(resolved.load(), 200);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed + stats.rejected, 200u);
}

TEST_F(QueryServerTest, DeadlineExpiryRejectsBeforeEvaluation)
{
    ServerOptions options;
    options.workers = 1;
    options.deadline_sec = 1e-9; // every query expires by dispatch
    QueryServer server(_snapshot, _docs, options);

    const int queries = 8;
    std::vector<std::future<QueryResponse>> futures;
    for (int i = 0; i < queries; ++i)
        futures.push_back(server.submit(Query::parse("common")));
    for (auto &future : futures) {
        QueryResponse reply = future.get();
        EXPECT_FALSE(reply.ok);
        EXPECT_EQ(reply.error, "deadline expired");
        EXPECT_TRUE(reply.hits.empty());
    }

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.timed_out, static_cast<std::uint64_t>(queries));
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.rejected, 0u);
    // Timed-out queries never enter the latency log.
    EXPECT_EQ(stats.latency.count, 0u);
}

TEST_F(QueryServerTest, GenerousDeadlineDoesNotReject)
{
    ServerOptions options;
    options.deadline_sec = 60.0;
    QueryServer server(_snapshot, _docs, options);
    QueryResponse reply = server.submit(Query::parse("common")).get();
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(server.stats().timed_out, 0u);
}

/**
 * Fixture for deterministic overload: an always-expired deadline plus
 * a callback that parks the dispatcher inside the first query's
 * rejection, so the admission queue provably fills behind it.
 */
class QueryServerOverloadTest : public QueryServerTest
{
  protected:
    /**
     * Start a server whose dispatcher is parked: the first submitted
     * query expires at dispatch and its rejection callback (which
     * runs on the dispatcher thread) blocks on _release until
     * releaseDispatcher(). Queries submitted after first() resolves
     * stay in the admission queue.
     */
    std::unique_ptr<QueryServer>
    makeParkedServer(OverloadPolicy policy, std::size_t capacity)
    {
        ServerOptions options;
        options.workers = 1;
        options.batch_size = 1;
        options.queue_capacity = capacity;
        options.deadline_sec = 1e-9;
        options.overload_policy = policy;
        auto server =
            std::make_unique<QueryServer>(_snapshot, _docs, options);

        std::shared_future<void> gate(_release.get_future());
        _first = server->submit(
            Query::parse("common"),
            [gate](const QueryResponse &) { gate.wait(); });
        // reject() resolves the future before invoking the callback,
        // so once get() returns the dispatcher is entering the
        // callback and cannot pop another request until released.
        _first.get();
        return server;
    }

    void releaseDispatcher() { _release.set_value(); }

    std::promise<void> _release;
    std::future<QueryResponse> _first;
};

TEST_F(QueryServerOverloadTest, ShedOldestDropsLongestQueued)
{
    auto server =
        makeParkedServer(OverloadPolicy::ShedOldest, 2);

    // Fill the queue behind the parked dispatcher, then overflow it.
    auto oldest = server->submit(Query::parse("common"));
    auto middle = server->submit(Query::parse("rare"));
    auto newest = server->submit(Query::parse("other"));

    // The overflow shed the *oldest* queued query, immediately.
    QueryResponse shed_reply = oldest.get();
    EXPECT_FALSE(shed_reply.ok);
    EXPECT_EQ(shed_reply.error, "shed under overload");
    EXPECT_EQ(server->stats().shed, 1u);

    releaseDispatcher();
    server->shutdown();

    // The survivors were answered (here: expired by the tiny
    // deadline, not lost). Every future resolved.
    EXPECT_EQ(middle.get().error, "deadline expired");
    EXPECT_EQ(newest.get().error, "deadline expired");

    ServerStats stats = server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.timed_out, 3u); // parked first + two survivors
    EXPECT_EQ(stats.completed, 0u);
}

TEST_F(QueryServerOverloadTest, RejectNewestRefusesTheIncoming)
{
    auto server =
        makeParkedServer(OverloadPolicy::RejectNewest, 2);

    auto oldest = server->submit(Query::parse("common"));
    auto middle = server->submit(Query::parse("rare"));
    auto newest = server->submit(Query::parse("other"));

    // The incoming query was refused; the queued ones kept their
    // slots.
    QueryResponse shed_reply = newest.get();
    EXPECT_FALSE(shed_reply.ok);
    EXPECT_EQ(shed_reply.error, "shed under overload");
    EXPECT_EQ(server->stats().shed, 1u);

    releaseDispatcher();
    server->shutdown();

    EXPECT_EQ(oldest.get().error, "deadline expired");
    EXPECT_EQ(middle.get().error, "deadline expired");

    ServerStats stats = server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.timed_out, 3u);
}

TEST_F(QueryServerTest, ShedCallbackStillRuns)
{
    // A shed query's callback contract matches any other rejection:
    // invoked with the refusal response.
    ServerOptions options;
    options.workers = 1;
    options.batch_size = 1;
    options.queue_capacity = 1;
    options.deadline_sec = 1e-9;
    options.overload_policy = OverloadPolicy::RejectNewest;
    QueryServer server(_snapshot, _docs, options);

    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    auto parked = server.submit(
        Query::parse("common"),
        [gate](const QueryResponse &) { gate.wait(); });
    parked.get(); // dispatcher now parked in the callback

    auto queued = server.submit(Query::parse("common"));
    std::atomic<int> called{0};
    auto shed = server.submit(Query::parse("rare"),
                              [&](const QueryResponse &reply) {
                                  EXPECT_FALSE(reply.ok);
                                  ++called;
                              });
    EXPECT_EQ(shed.get().error, "shed under overload");
    EXPECT_EQ(called.load(), 1);

    release.set_value();
    server.shutdown();
    queued.get();
}

TEST_F(QueryServerTest, ThrowingQueryIsIsolated)
{
    ServerOptions options;
    options.workers = 1; // serialize: the faulting query runs first
    QueryServer server(_snapshot, _docs, options);

    FaultSpec once;
    once.fire_limit = 1;
    ScopedFault fault("query_server.execute", once);

    QueryResponse poisoned =
        server.submit(Query::parse("common")).get();
    EXPECT_FALSE(poisoned.ok);
    EXPECT_EQ(poisoned.error, "query failed: injected query fault");

    // The server survived: the next query is served normally.
    QueryResponse healthy =
        server.submit(Query::parse("common")).get();
    EXPECT_TRUE(healthy.ok);
    EXPECT_EQ(healthy.hits.size(), 4u);

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST_F(QueryServerTest, ManyThrowingQueriesNeverKillTheServer)
{
    ServerOptions options;
    options.workers = 4;
    QueryServer server(_snapshot, _docs, options);

    FaultSpec half;
    half.probability = 0.5;
    half.seed = 77;
    ScopedFault fault("query_server.execute", half);

    const int queries = 200;
    std::vector<std::future<QueryResponse>> futures;
    for (int i = 0; i < queries; ++i)
        futures.push_back(server.submit(Query::parse("common")));

    std::uint64_t ok = 0, failed = 0;
    for (auto &future : futures) {
        QueryResponse reply = future.get();
        if (reply.ok)
            ++ok;
        else {
            EXPECT_EQ(reply.error,
                      "query failed: injected query fault");
            ++failed;
        }
    }
    EXPECT_EQ(ok + failed, static_cast<std::uint64_t>(queries));
    EXPECT_GT(ok, 0u);
    EXPECT_GT(failed, 0u);

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, ok);
    EXPECT_EQ(stats.rejected, failed);
}

/** Seal a one-term snapshot whose every doc carries @p marker. */
IndexSnapshot
markerSnapshot(const std::string &marker, int doc_count)
{
    InvertedIndex index;
    for (int d = 0; d < doc_count; ++d)
        index.addBlock(block(static_cast<DocId>(d), {marker}));
    return IndexSnapshot::seal(std::move(index));
}

TEST_F(QueryServerTest, PublishHotSwapsWithoutTearing)
{
    // Queries race publishes of alternating generations. Each
    // generation is internally marked ("aaa" has 4 docs, "bbb" 5);
    // every response must be wholly one generation: the matching
    // marker's full doc count, the other marker's zero. Part of the
    // check_tsan_live_index suite.
    DocTable docs_a, docs_b;
    for (int d = 0; d < 4; ++d)
        docs_a.add("/a" + std::to_string(d), 100);
    for (int d = 0; d < 5; ++d)
        docs_b.add("/b" + std::to_string(d), 100);
    IndexSnapshot gen_a = markerSnapshot("aaa", 4);
    IndexSnapshot gen_b = markerSnapshot("bbb", 5);

    ServerOptions options;
    options.workers = 2;
    QueryServer server(gen_a, docs_a, options);

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&] {
            while (!stop.load()) {
                QueryResponse a =
                    server.submit(Query::parse("aaa OR bbb")).get();
                ASSERT_TRUE(a.ok) << a.error;
                EXPECT_TRUE(a.hits.size() == 4 || a.hits.size() == 5);

                QueryResponse r =
                    server.submitRanked(Query::parse("aaa OR bbb"), 10)
                        .get();
                ASSERT_TRUE(r.ok) << r.error;
                EXPECT_TRUE(r.ranked.size() == 4
                            || r.ranked.size() == 5);
            }
        });
    }

    const std::uint64_t swaps_before = server.stats().swaps;
    for (int round = 1; round <= 40; ++round) {
        if (round % 2 == 0)
            server.publish(gen_a, docs_a,
                           static_cast<std::uint64_t>(round));
        else
            server.publish(gen_b, docs_b,
                           static_cast<std::uint64_t>(round));
    }
    stop.store(true);
    for (std::thread &client : clients)
        client.join();

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.swaps, swaps_before + 40);
    EXPECT_EQ(stats.generation, 40u);
    EXPECT_EQ(server.docCount(), 4u); // round 40 republished gen_a
}

TEST_F(QueryServerTest, PublishLiveShapeServesDeltasAndTombstones)
{
    // A live-shaped update (base + delta + tombstone) through the
    // same publish path: the server must route both query kinds to
    // the LiveSearcher and honor the mask.
    QueryServer server(_snapshot, _docs, {});

    ServingUpdate update;
    update.base = _snapshot;
    update.docs = _docs;
    update.docs.add("/f4", 1000); // delta doc: "common fresh"
    update.base_docs = 4;
    InvertedIndex delta;
    delta.addBlock(block(4, {"common", "fresh"}));
    DeltaSegment segment;
    segment.index = IndexSnapshot::seal(std::move(delta));
    segment.first_doc = 4;
    segment.end_doc = 5;
    update.deltas.push_back(std::move(segment));
    update.tombstones = {1};
    update.generation = 7;
    server.publish(std::move(update));

    QueryResponse boolean =
        server.submit(Query::parse("common")).get();
    ASSERT_TRUE(boolean.ok);
    EXPECT_EQ(boolean.hits, (DocSet{0, 2, 3, 4}));

    QueryResponse negated =
        server.submit(Query::parse("NOT fresh")).get();
    ASSERT_TRUE(negated.ok);
    EXPECT_EQ(negated.hits, (DocSet{0, 2, 3})); // doc 1 stays dead

    QueryResponse ranked =
        server.submitRanked(Query::parse("fresh"), 3).get();
    ASSERT_TRUE(ranked.ok);
    ASSERT_EQ(ranked.ranked.size(), 1u);
    EXPECT_EQ(ranked.ranked[0].doc, 4u);
    EXPECT_EQ(server.stats().generation, 7u);
}

TEST_F(QueryServerTest, ShutdownRacingPublishIsSafe)
{
    // The shutdown-vs-swap ordering contract: a publisher thread
    // hammering publish() while the server shuts down must never
    // touch freed serving state (in-flight queries hold their
    // generation; the atomic swap outlives the pools), every future
    // must resolve, and publishes after shutdown() must remain legal
    // (the next generation simply has no queries to serve). TSan
    // asserts the no-use-after-move half.
    for (int round = 0; round < 10; ++round) {
        ServerOptions options;
        options.workers = 2;
        QueryServer server(_snapshot, _docs, options);

        std::atomic<bool> stop{false};
        std::thread publisher([&] {
            DocTable docs = _docs;
            int gen = 0;
            while (!stop.load())
                server.publish(_snapshot, docs,
                               static_cast<std::uint64_t>(++gen));
        });
        std::thread client([&] {
            while (!stop.load()) {
                auto reply =
                    server.submit(Query::parse("common")).get();
                EXPECT_TRUE(reply.ok
                            || reply.error == "server has shut down");
            }
        });

        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        server.shutdown();
        stop.store(true);
        publisher.join();
        client.join();

        // Post-shutdown publish: still well-defined.
        server.publish(_snapshot, _docs, 9999);
        EXPECT_EQ(server.stats().generation, 9999u);
    }
}

} // namespace
} // namespace dsearch
