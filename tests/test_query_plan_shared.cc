/**
 * @file
 * Concurrency tests for compiled query plans: one QueryPlan object is
 * immutable after compile() and is meant to be evaluated by many
 * threads at once — QueryServer workers, several servers standing in
 * for broker shards, and raw searcher threads all share the same
 * operator tree and the same weight vector. This is the TSan target
 * behind the check_tsan_query_plan CI leg: any hidden mutation inside
 * plan evaluation (operator state, lazy caches, shared_ptr misuse)
 * shows up as a race here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "search/plan.hh"
#include "search/query_server.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

constexpr std::size_t vocab = 6;
constexpr DocId doc_count = 500;

std::string
word(std::size_t v)
{
    return "w" + std::to_string(v);
}

struct Fixture
{
    IndexSnapshot snapshot;
    DocTable docs;

    Fixture()
    {
        Rng rng(99);
        InvertedIndex index;
        for (DocId doc = 0; doc < doc_count; ++doc) {
            TermBlock block;
            block.doc = doc;
            bool any = false;
            for (std::size_t v = 0; v < vocab; ++v) {
                if (rng.bernoulli(0.5 / static_cast<double>(v + 1))) {
                    block.addTerm(word(v));
                    any = true;
                }
            }
            if (any)
                index.addBlock(block);
            docs.add("/f" + std::to_string(doc),
                     100 + rng.uniform(0, 4000));
        }
        snapshot = IndexSnapshot::seal(std::move(index));
    }
};

/** A plan with every operator kind: And, Or, Diff (NOT) and terms. */
QueryPlan
sharedPlan(const Searcher &searcher)
{
    Query query = Query::parse(
        "(w0 AND w1) OR (w2 AND NOT w3) OR (w4 AND w0)");
    EXPECT_TRUE(query.valid());
    return searcher.compilePlan(query);
}

TEST(QueryPlanShared, RawThreadsEvaluateOnePlanConcurrently)
{
    Fixture fixture;
    Searcher searcher(fixture.snapshot, doc_count);
    RankedSearcher ranked(fixture.snapshot, fixture.docs);
    const QueryPlan plan = sharedPlan(searcher);

    const DocSet expected_hits = searcher.run(plan);
    const std::vector<ScoredHit> expected_top = ranked.topK(plan, 10);

    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                if (searcher.run(plan) != expected_hits)
                    mismatches.fetch_add(1);
                const auto top = ranked.topK(plan, 10);
                if (top.size() != expected_top.size()) {
                    mismatches.fetch_add(1);
                    continue;
                }
                for (std::size_t j = 0; j < top.size(); ++j)
                    if (top[j].doc != expected_top[j].doc
                        || top[j].score != expected_top[j].score)
                        mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(QueryPlanShared, OnePlanAcrossServerWorkersAndServers)
{
    // Two servers over the same snapshot stand in for broker shards:
    // the broker compiles one plan per request and fans the same
    // object out to every shard's worker pool.
    Fixture fixture;
    ServerOptions options;
    options.workers = 3;
    QueryServer a(fixture.snapshot, fixture.docs, options);
    QueryServer b(fixture.snapshot, fixture.docs, options);

    Searcher reference(fixture.snapshot, doc_count);
    const QueryPlan plan = sharedPlan(reference);
    const DocSet expected = reference.run(plan);

    // One weight vector shared by every weighted submission, exactly
    // as the broker ships it.
    auto weights = std::make_shared<TermWeights>();
    for (const std::string &term : plan.scoreTerms())
        weights->emplace_back(
            term, idfFromCounts(doc_count,
                                fixture.snapshot.termDocCount(term)));

    std::vector<std::future<QueryResponse>> futures;
    for (int i = 0; i < 64; ++i) {
        QueryServer &server = (i % 2 == 0) ? a : b;
        if (i % 3 == 0)
            futures.push_back(
                server.submitRankedWeighted(plan, 10, weights));
        else
            futures.push_back(server.submitPlan(plan));
    }

    RankedSearcher ranked(fixture.snapshot, fixture.docs);
    const std::vector<ScoredHit> expected_top =
        ranked.topKWeighted(plan, 10, *weights);
    for (std::size_t i = 0; i < futures.size(); ++i) {
        QueryResponse response = futures[i].get();
        ASSERT_TRUE(response.ok) << response.error;
        if (i % 3 == 0) {
            ASSERT_EQ(response.ranked.size(), expected_top.size());
            for (std::size_t j = 0; j < expected_top.size(); ++j) {
                EXPECT_EQ(response.ranked[j].doc,
                          expected_top[j].doc);
                EXPECT_EQ(response.ranked[j].score,
                          expected_top[j].score);
            }
        } else {
            EXPECT_EQ(response.hits, expected);
        }
    }
    a.shutdown();
    b.shutdown();
}

TEST(QueryPlanShared, PlanOutlivesTheQueryItCameFrom)
{
    // The plan owns everything it needs: evaluating after the source
    // Query is gone (and from another thread) is safe.
    Fixture fixture;
    Searcher searcher(fixture.snapshot, doc_count);
    QueryPlan plan;
    {
        Query query = Query::parse("w0 AND NOT w1");
        ASSERT_TRUE(query.valid());
        plan = searcher.compilePlan(query);
    }
    DocSet expected;
    std::thread worker([&] { expected = searcher.run(plan); });
    worker.join();
    EXPECT_EQ(searcher.run(plan), expected);
    EXPECT_EQ(expected,
              subtractSets(searcher.run(Query::parse("w0")),
                           searcher.run(Query::parse("w1"))));
}

} // namespace
} // namespace dsearch
