/**
 * @file
 * Unit tests for timing helpers (util/timer.hh).
 */

#include <gtest/gtest.h>

#include <thread>

#include "util/timer.hh"

namespace dsearch {
namespace {

TEST(Timer, MeasuresElapsedTime)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    double sec = timer.elapsedSec();
    EXPECT_GE(sec, 0.015);
    EXPECT_LT(sec, 2.0);
    EXPECT_GE(timer.elapsedUsec(), 15000);
}

TEST(Timer, ResetRestartsTheClock)
{
    Timer timer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    timer.reset();
    EXPECT_LT(timer.elapsedSec(), 0.015);
}

TEST(Timer, MonotoneNonDecreasing)
{
    Timer timer;
    double last = 0.0;
    for (int i = 0; i < 100; ++i) {
        double now = timer.elapsedSec();
        EXPECT_GE(now, last);
        last = now;
    }
}

TEST(ScopedTimer, AccumulatesIntoTarget)
{
    double acc = 0.0;
    {
        ScopedTimer t(acc);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(acc, 0.008);
    double first = acc;
    {
        ScopedTimer t(acc);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(acc, first); // accumulates, not overwrites
}

} // namespace
} // namespace dsearch
