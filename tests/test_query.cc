/**
 * @file
 * Unit tests for the query parser (search/query.hh).
 */

#include <gtest/gtest.h>

#include "search/query.hh"

namespace dsearch {
namespace {

TEST(Query, SingleTerm)
{
    Query q = Query::parse("hello");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Term);
    EXPECT_EQ(q.root().term, "hello");
    EXPECT_EQ(q.toString(), "hello");
}

TEST(Query, TermsAreCaseFolded)
{
    Query q = Query::parse("HeLLo");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().term, "hello");
}

TEST(Query, ExplicitAnd)
{
    Query q = Query::parse("cats AND dogs");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::And);
    ASSERT_EQ(q.root().children.size(), 2u);
    EXPECT_EQ(q.root().children[0].term, "cats");
    EXPECT_EQ(q.root().children[1].term, "dogs");
}

TEST(Query, ImplicitAndFromAdjacency)
{
    Query q = Query::parse("cats dogs birds");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::And);
    EXPECT_EQ(q.root().children.size(), 3u);
    EXPECT_EQ(q.toString(), "(cats AND dogs AND birds)");
}

TEST(Query, OrChain)
{
    Query q = Query::parse("a OR b OR c");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Or);
    EXPECT_EQ(q.root().children.size(), 3u);
}

TEST(Query, AndBindsTighterThanOr)
{
    Query q = Query::parse("a b OR c");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::Or);
    ASSERT_EQ(q.root().children.size(), 2u);
    EXPECT_EQ(q.root().children[0].kind, QueryNode::Kind::And);
    EXPECT_EQ(q.root().children[1].kind, QueryNode::Kind::Term);
    EXPECT_EQ(q.toString(), "((a AND b) OR c)");
}

TEST(Query, NotUnary)
{
    Query q = Query::parse("NOT spam");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Not);
    ASSERT_EQ(q.root().children.size(), 1u);
    EXPECT_EQ(q.root().children[0].term, "spam");
}

TEST(Query, NotBindsToNearestOperand)
{
    Query q = Query::parse("ham AND NOT spam");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::And);
    EXPECT_EQ(q.root().children[1].kind, QueryNode::Kind::Not);
}

TEST(Query, DoubleNegation)
{
    Query q = Query::parse("NOT NOT x");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Not);
    EXPECT_EQ(q.root().children[0].kind, QueryNode::Kind::Not);
}

TEST(Query, ParenthesesOverridePrecedence)
{
    Query q = Query::parse("a AND (b OR c)");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::And);
    EXPECT_EQ(q.root().children[1].kind, QueryNode::Kind::Or);
    EXPECT_EQ(q.toString(), "(a AND (b OR c))");
}

TEST(Query, NestedParentheses)
{
    Query q = Query::parse("((a))");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Term);
    EXPECT_EQ(q.root().term, "a");
}

TEST(Query, OperatorsAreCaseInsensitive)
{
    Query q = Query::parse("a and b or not c");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().kind, QueryNode::Kind::Or);
}

TEST(Query, PunctuationIgnoredInTerms)
{
    Query q = Query::parse("c++ rocks!");
    ASSERT_TRUE(q.valid());
    ASSERT_EQ(q.root().kind, QueryNode::Kind::And);
    EXPECT_EQ(q.root().children[0].term, "c");
    EXPECT_EQ(q.root().children[1].term, "rocks");
}

TEST(Query, EmptyQueryInvalid)
{
    Query q = Query::parse("");
    EXPECT_FALSE(q.valid());
    EXPECT_EQ(q.error(), "empty query");
    Query q2 = Query::parse("   .,!  ");
    EXPECT_FALSE(q2.valid());
}

TEST(Query, MissingOperandInvalid)
{
    EXPECT_FALSE(Query::parse("a AND").valid());
    EXPECT_FALSE(Query::parse("OR b").valid());
    EXPECT_FALSE(Query::parse("NOT").valid());
}

TEST(Query, UnbalancedParensInvalid)
{
    EXPECT_FALSE(Query::parse("(a AND b").valid());
    EXPECT_FALSE(Query::parse("a)").valid());
    EXPECT_FALSE(Query::parse("()").valid());
}

TEST(Query, InvalidQueryToStringMentionsError)
{
    Query q = Query::parse("(");
    ASSERT_FALSE(q.valid());
    EXPECT_NE(q.toString().find("invalid"), std::string::npos);
}

TEST(QueryDeath, RootOfInvalidQueryPanics)
{
    Query q = Query::parse("");
    EXPECT_DEATH((void)q.root(), "invalid query");
}

TEST(Query, NumericTerms)
{
    Query q = Query::parse("2010 AND report");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.root().children[0].term, "2010");
}

TEST(Query, ComplexQueryRoundTrip)
{
    Query q = Query::parse("(alpha OR beta) AND NOT (gamma delta)");
    ASSERT_TRUE(q.valid());
    EXPECT_EQ(q.toString(),
              "((alpha OR beta) AND (NOT (gamma AND delta)))");
}

} // namespace
} // namespace dsearch
