/**
 * @file
 * Unit tests for the fault-injection registry (util/fault.hh): arming
 * semantics (skip, fire_limit, probability), determinism of the
 * per-point firing stream, counter accounting, ScopedFault RAII, and
 * the wiring into the serialize layer's stream fault points.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "index/serialize.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

/** Every test leaves the registry empty for the next one. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarmAllFaults(); }
    void TearDown() override { disarmAllFaults(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultFires("fault_test.unarmed"));
    // Unarmed probes are not even counted: the registry is off.
    EXPECT_EQ(faultHits("fault_test.unarmed"), 0u);
    EXPECT_TRUE(armedFaults().empty());
}

TEST_F(FaultTest, ArmedPointFiresEveryHitByDefault)
{
    armFault("fault_test.always");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(faultFires("fault_test.always"));
    EXPECT_EQ(faultHits("fault_test.always"), 10u);
    EXPECT_EQ(faultFireCount("fault_test.always"), 10u);

    // Other points are unaffected by this arming.
    EXPECT_FALSE(faultFires("fault_test.other"));

    disarmFault("fault_test.always");
    EXPECT_FALSE(faultFires("fault_test.always"));
}

TEST_F(FaultTest, SkipDelaysFiring)
{
    FaultSpec spec;
    spec.skip = 3;
    armFault("fault_test.skip", spec);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(faultFires("fault_test.skip")) << i;
    EXPECT_TRUE(faultFires("fault_test.skip"));
    EXPECT_EQ(faultHits("fault_test.skip"), 4u);
    EXPECT_EQ(faultFireCount("fault_test.skip"), 1u);
}

TEST_F(FaultTest, FireLimitMakesPointDormant)
{
    FaultSpec spec;
    spec.fire_limit = 2;
    armFault("fault_test.limit", spec);
    EXPECT_TRUE(faultFires("fault_test.limit"));
    EXPECT_TRUE(faultFires("fault_test.limit"));
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(faultFires("fault_test.limit"));
    EXPECT_EQ(faultFireCount("fault_test.limit"), 2u);
    EXPECT_EQ(faultHits("fault_test.limit"), 7u);
}

TEST_F(FaultTest, ProbabilityStreamIsDeterministic)
{
    FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = 42;

    auto sample = [&] {
        armFault("fault_test.prob", spec);
        std::vector<bool> pattern;
        for (int i = 0; i < 256; ++i)
            pattern.push_back(faultFires("fault_test.prob"));
        disarmFault("fault_test.prob");
        return pattern;
    };

    std::vector<bool> first = sample();
    std::vector<bool> second = sample();
    EXPECT_EQ(first, second); // re-arming replays the exact sequence

    std::size_t fires = 0;
    for (bool fired : first)
        fires += fired ? 1 : 0;
    // Roughly half fire; exact count pinned by determinism above.
    EXPECT_GT(fires, 256u / 4);
    EXPECT_LT(fires, 256u * 3 / 4);

    // A different seed produces a different stream.
    spec.seed = 43;
    EXPECT_NE(sample(), first);
}

TEST_F(FaultTest, RearmingResetsCounters)
{
    armFault("fault_test.rearm");
    faultFires("fault_test.rearm");
    faultFires("fault_test.rearm");
    EXPECT_EQ(faultHits("fault_test.rearm"), 2u);
    armFault("fault_test.rearm"); // replaces the previous arming
    EXPECT_EQ(faultHits("fault_test.rearm"), 0u);
    EXPECT_EQ(faultFireCount("fault_test.rearm"), 0u);
}

TEST_F(FaultTest, DisarmAllAndEnumeration)
{
    armFault("fault_test.a");
    armFault("fault_test.b");
    std::vector<std::string> armed = armedFaults();
    EXPECT_EQ(armed.size(), 2u);
    disarmAllFaults();
    EXPECT_TRUE(armedFaults().empty());
    EXPECT_FALSE(faultFires("fault_test.a"));
    EXPECT_FALSE(faultFires("fault_test.b"));
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit)
{
    {
        ScopedFault fault("fault_test.scoped");
        EXPECT_TRUE(faultFires("fault_test.scoped"));
        EXPECT_EQ(fault.hits(), 1u);
        EXPECT_EQ(fault.fires(), 1u);
    }
    EXPECT_FALSE(faultFires("fault_test.scoped"));
    EXPECT_TRUE(armedFaults().empty());
}

TEST_F(FaultTest, SerializeSaveStreamFaultFailsSaveCleanly)
{
    InvertedIndex index;
    DocTable docs;
    docs.add("/a", 10);
    TermBlock block;
    block.doc = 0;
    block.addTerm("alpha");
    index.addBlock(block);

    setLogLevel(LogLevel::Silent);
    {
        ScopedFault fault("serialize.save.stream");
        std::ostringstream out(std::ios::binary);
        EXPECT_FALSE(saveIndex(index, docs, out));
        EXPECT_EQ(fault.fires(), 1u);
    }
    // Disarmed: the same save now succeeds.
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveIndex(index, docs, out));
    setLogLevel(LogLevel::Info);
}

TEST_F(FaultTest, SerializeLoadStreamFaultFailsLoadCleanly)
{
    InvertedIndex index;
    DocTable docs;
    docs.add("/a", 10);
    TermBlock block;
    block.doc = 0;
    block.addTerm("alpha");
    index.addBlock(block);
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(saveIndex(index, docs, out));

    setLogLevel(LogLevel::Silent);
    {
        ScopedFault fault("serialize.load.stream");
        InvertedIndex loaded;
        DocTable loaded_docs;
        std::istringstream in(out.str(), std::ios::binary);
        EXPECT_FALSE(loadIndex(loaded, loaded_docs, in));
        EXPECT_TRUE(loaded.empty());
        EXPECT_EQ(loaded_docs.docCount(), 0u);
    }
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(out.str(), std::ios::binary);
    EXPECT_TRUE(loadIndex(loaded, loaded_docs, in));
    setLogLevel(LogLevel::Info);
}

} // namespace
} // namespace dsearch
