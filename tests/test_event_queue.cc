/**
 * @file
 * Unit tests for the DES kernel (sim/event_queue.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace dsearch {
namespace {

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&order] { order.push_back(3); });
    eq.schedule(10, [&order] { order.push_back(1); });
    eq.schedule(20, [&order] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTimesRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime fired_at = 0;
    eq.schedule(100, [&eq, &fired_at] {
        eq.scheduleAfter(50, [&eq, &fired_at] { fired_at = eq.now(); });
    });
    eq.runAll();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5)
            eq.scheduleAfter(10, step);
    };
    eq.schedule(0, step);
    std::size_t executed = eq.runAll();
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(executed, 5u);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NowAdvancesMonotonically)
{
    EventQueue eq;
    SimTime last = 0;
    bool monotone = true;
    for (SimTime t : {40u, 10u, 30u, 10u, 20u}) {
        eq.schedule(t, [&eq, &last, &monotone] {
            monotone &= eq.now() >= last;
            last = eq.now();
        });
    }
    eq.runAll();
    EXPECT_TRUE(monotone);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, RunOneStepsExactlyOneEvent)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&count] { ++count; });
    eq.schedule(2, [&count] { ++count; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, RunawayLoopHitsBudget)
{
    EventQueue eq;
    std::function<void()> forever = [&] {
        eq.scheduleAfter(1, forever);
    };
    eq.schedule(0, forever);
    EXPECT_DEATH(eq.runAll(1000), "budget");
}

TEST(SimTimeConversions, RoundTrip)
{
    EXPECT_EQ(secToSim(1.0), 1000000u);
    EXPECT_EQ(secToSim(0.0), 0u);
    EXPECT_EQ(secToSim(-5.0), 0u);
    EXPECT_DOUBLE_EQ(simToSec(2500000), 2.5);
    EXPECT_NEAR(simToSec(secToSim(46.7)), 46.7, 1e-6);
}

} // namespace
} // namespace dsearch
