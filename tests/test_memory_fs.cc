/**
 * @file
 * Unit tests for the in-memory filesystem (fs/memory_fs.hh).
 */

#include <gtest/gtest.h>

#include "fs/memory_fs.hh"

namespace dsearch {
namespace {

TEST(MemoryFs, StartsEmpty)
{
    MemoryFs fs;
    EXPECT_EQ(fs.fileCount(), 0u);
    EXPECT_EQ(fs.totalBytes(), 0u);
    EXPECT_TRUE(fs.isDirectory("/"));
    EXPECT_TRUE(fs.list("/").empty());
}

TEST(MemoryFs, AddAndReadFile)
{
    MemoryFs fs;
    fs.addFile("/docs/a.txt", "hello world");
    EXPECT_TRUE(fs.isFile("/docs/a.txt"));
    EXPECT_EQ(fs.fileSize("/docs/a.txt"), 11u);
    std::string content;
    ASSERT_TRUE(fs.readFile("/docs/a.txt", content));
    EXPECT_EQ(content, "hello world");
}

TEST(MemoryFs, ParentDirectoriesCreatedImplicitly)
{
    MemoryFs fs;
    fs.addFile("/a/b/c/file.txt", "x");
    EXPECT_TRUE(fs.isDirectory("/a"));
    EXPECT_TRUE(fs.isDirectory("/a/b"));
    EXPECT_TRUE(fs.isDirectory("/a/b/c"));
    EXPECT_FALSE(fs.isFile("/a/b"));
}

TEST(MemoryFs, ListingIsSortedAndTyped)
{
    MemoryFs fs;
    fs.addFile("/dir/zeta.txt", "z");
    fs.addFile("/dir/alpha.txt", "a");
    fs.mkdirs("/dir/middle");
    auto entries = fs.list("/dir");
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].name, "alpha.txt");
    EXPECT_FALSE(entries[0].is_dir);
    EXPECT_EQ(entries[1].name, "middle");
    EXPECT_TRUE(entries[1].is_dir);
    EXPECT_EQ(entries[2].name, "zeta.txt");
}

TEST(MemoryFs, OverwriteReplacesContentAndAccounting)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "12345");
    fs.addFile("/f.txt", "123");
    EXPECT_EQ(fs.fileCount(), 1u);
    EXPECT_EQ(fs.totalBytes(), 3u);
    std::string content;
    ASSERT_TRUE(fs.readFile("/f.txt", content));
    EXPECT_EQ(content, "123");
}

TEST(MemoryFs, MissingPathsBehave)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "x");
    EXPECT_FALSE(fs.isFile("/missing.txt"));
    EXPECT_FALSE(fs.isDirectory("/missing"));
    EXPECT_EQ(fs.fileSize("/missing.txt"), 0u);
    std::string content;
    EXPECT_FALSE(fs.readFile("/missing.txt", content));
    EXPECT_TRUE(fs.list("/missing").empty());
}

TEST(MemoryFs, ReadOnDirectoryFails)
{
    MemoryFs fs;
    fs.mkdirs("/dir");
    std::string content;
    EXPECT_FALSE(fs.readFile("/dir", content));
    EXPECT_EQ(fs.fileSize("/dir"), 0u);
}

TEST(MemoryFs, ListOnFileIsEmpty)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "x");
    EXPECT_TRUE(fs.list("/f.txt").empty());
}

TEST(MemoryFs, TotalsAccumulate)
{
    MemoryFs fs;
    fs.addFile("/a", std::string(100, 'a'));
    fs.addFile("/b", std::string(200, 'b'));
    EXPECT_EQ(fs.fileCount(), 2u);
    EXPECT_EQ(fs.totalBytes(), 300u);
}

TEST(MemoryFs, EmptyFile)
{
    MemoryFs fs;
    fs.addFile("/empty.txt", "");
    EXPECT_TRUE(fs.isFile("/empty.txt"));
    EXPECT_EQ(fs.fileSize("/empty.txt"), 0u);
    std::string content = "sentinel";
    ASSERT_TRUE(fs.readFile("/empty.txt", content));
    EXPECT_TRUE(content.empty());
}

TEST(MemoryFs, MkdirsIdempotent)
{
    MemoryFs fs;
    fs.mkdirs("/x/y");
    fs.mkdirs("/x/y");
    EXPECT_TRUE(fs.isDirectory("/x/y"));
}

TEST(MemoryFsDeath, FileInMiddleOfPathPanics)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "x");
    EXPECT_DEATH(fs.addFile("/a.txt/nested.txt", "y"), "");
}

TEST(MemoryFsDeath, DirectoryOverwriteByFilePanics)
{
    MemoryFs fs;
    fs.mkdirs("/dir");
    EXPECT_DEATH(fs.addFile("/dir", "y"), "");
}

} // namespace
} // namespace dsearch
