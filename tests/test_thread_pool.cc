/**
 * @file
 * Unit tests for the thread pool (pipeline/thread_pool.hh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "pipeline/thread_pool.hh"

namespace dsearch {
namespace {

TEST(ThreadPool, ExecutesAllTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerCount)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.workerCount(), 5u);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, TasksRunOnMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    for (int i = 0; i < 64; ++i) {
        pool.submit([&mutex, &ids] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            std::scoped_lock lock(mutex);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++counter;
            });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitSeesTasksSubmittedFromTasks)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&pool, &counter] {
        ++counter;
        pool.submit([&counter] { ++counter; });
    });
    // Give the nested submit a chance to land before waiting.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ManyWaitCycles)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), (round + 1) * 10);
    }
}

TEST(ThreadPoolDeath, ZeroWorkersIsFatal)
{
    EXPECT_EXIT(ThreadPool(0), ::testing::ExitedWithCode(1),
                "at least one worker");
}

} // namespace
} // namespace dsearch
