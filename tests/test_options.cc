/**
 * @file
 * Unit tests for the CLI option parser (util/options.hh).
 */

#include <gtest/gtest.h>

#include "util/options.hh"

namespace dsearch {
namespace {

OptionParser
makeParser()
{
    OptionParser parser("prog", "test program");
    parser.addFlag("verbose", "chatty output");
    parser.addInt("threads", "worker count", 4);
    parser.addDouble("scale", "corpus scale", 0.1);
    parser.addString("root", "corpus root", "/corpus");
    return parser;
}

TEST(Options, DefaultsWithoutArguments)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog"};
    parser.parse(1, argv);
    EXPECT_FALSE(parser.flag("verbose"));
    EXPECT_EQ(parser.intValue("threads"), 4);
    EXPECT_DOUBLE_EQ(parser.doubleValue("scale"), 0.1);
    EXPECT_EQ(parser.stringValue("root"), "/corpus");
    EXPECT_TRUE(parser.positional().empty());
}

TEST(Options, SpaceSeparatedValues)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--threads", "8", "--root", "/tmp/x"};
    parser.parse(5, argv);
    EXPECT_EQ(parser.intValue("threads"), 8);
    EXPECT_EQ(parser.stringValue("root"), "/tmp/x");
}

TEST(Options, EqualsSeparatedValues)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--threads=16", "--scale=0.5"};
    parser.parse(3, argv);
    EXPECT_EQ(parser.intValue("threads"), 16);
    EXPECT_DOUBLE_EQ(parser.doubleValue("scale"), 0.5);
}

TEST(Options, FlagPresence)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    parser.parse(2, argv);
    EXPECT_TRUE(parser.flag("verbose"));
}

TEST(Options, PositionalArguments)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "query", "--threads", "2", "terms"};
    parser.parse(5, argv);
    ASSERT_EQ(parser.positional().size(), 2u);
    EXPECT_EQ(parser.positional()[0], "query");
    EXPECT_EQ(parser.positional()[1], "terms");
}

TEST(Options, NegativeNumbers)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--threads=-2", "--scale=-0.5"};
    parser.parse(3, argv);
    EXPECT_EQ(parser.intValue("threads"), -2);
    EXPECT_DOUBLE_EQ(parser.doubleValue("scale"), -0.5);
}

TEST(Options, HelpTextListsOptions)
{
    OptionParser parser = makeParser();
    std::string help = parser.helpText();
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    EXPECT_NE(help.find("--threads"), std::string::npos);
    EXPECT_NE(help.find("worker count"), std::string::npos);
    EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(OptionsDeath, UnknownOptionIsFatal)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(OptionsDeath, MalformedIntegerIsFatal)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--threads", "abc"};
    EXPECT_EXIT(parser.parse(3, argv), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(OptionsDeath, MissingValueIsFatal)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--threads"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(OptionsDeath, FlagWithValueIsFatal)
{
    OptionParser parser = makeParser();
    const char *argv[] = {"prog", "--verbose=yes"};
    EXPECT_EXIT(parser.parse(2, argv), ::testing::ExitedWithCode(1),
                "does not take a value");
}

TEST(OptionsDeath, QueryingUnregisteredOptionPanics)
{
    OptionParser parser = makeParser();
    EXPECT_DEATH((void)parser.intValue("nonexistent"),
                 "never registered");
}

TEST(OptionsDeath, WrongTypeQueryPanics)
{
    OptionParser parser = makeParser();
    EXPECT_DEATH((void)parser.intValue("verbose"), "wrong type");
}

} // namespace
} // namespace dsearch
