/**
 * @file
 * Unit tests for HashSet (util/hash_set.hh).
 */

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <unordered_set>

#include "util/fnv_hash.hh"
#include "util/hash_set.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

TEST(HashSet, HeterogeneousStringViewInsertAndContains)
{
    HashSet<std::string> set;
    std::string buffer = "the cat sat";
    std::string_view cat = std::string_view(buffer).substr(4, 3);

    EXPECT_TRUE(set.insert(cat)); // materializes "cat" on first sight
    EXPECT_FALSE(set.insert(cat));
    EXPECT_FALSE(set.insert(std::string("cat"))); // dedups across types
    EXPECT_TRUE(set.contains(std::string_view("cat")));
    EXPECT_TRUE(set.contains("cat"));
    EXPECT_FALSE(set.contains(std::string_view("ca")));
    EXPECT_EQ(set.size(), 1u);
}

TEST(HashSet, InsertHashedReusesCallerHash)
{
    HashSet<std::string> set;
    std::string_view term("precomputed");
    std::size_t hash = FnvHash<std::string>{}(term);
    EXPECT_TRUE(set.insertHashed(hash, term));
    EXPECT_FALSE(set.insertHashed(hash, term));
    EXPECT_TRUE(set.contains(term));
    EXPECT_TRUE(set.erase(term));
    EXPECT_FALSE(set.contains(term));
}

TEST(HashSet, StartsEmpty)
{
    HashSet<std::string> set;
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.size(), 0u);
    EXPECT_FALSE(set.contains("x"));
}

TEST(HashSet, InsertReportsNovelty)
{
    HashSet<std::string> set;
    EXPECT_TRUE(set.insert("term"));
    EXPECT_FALSE(set.insert("term"));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_TRUE(set.contains("term"));
}

TEST(HashSet, EraseRemovesElement)
{
    HashSet<std::string> set;
    set.insert("a");
    set.insert("b");
    EXPECT_TRUE(set.erase("a"));
    EXPECT_FALSE(set.erase("a"));
    EXPECT_FALSE(set.contains("a"));
    EXPECT_TRUE(set.contains("b"));
}

TEST(HashSet, ClearRemovesEverything)
{
    HashSet<std::string> set;
    for (int i = 0; i < 50; ++i)
        set.insert(std::to_string(i));
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains("25"));
    // Reusable after clear (the extractor's per-file pattern).
    EXPECT_TRUE(set.insert("25"));
}

TEST(HashSet, IterationVisitsAllElements)
{
    HashSet<std::string> set;
    for (int i = 0; i < 100; ++i)
        set.insert("e" + std::to_string(i));
    std::unordered_set<std::string> seen;
    for (const auto &slot : set)
        EXPECT_TRUE(seen.insert(slot.key).second);
    EXPECT_EQ(seen.size(), 100u);
}

TEST(HashSet, IntegerElements)
{
    HashSet<int> set;
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(set.insert(i));
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(set.contains(i));
    EXPECT_FALSE(set.contains(1000));
}

TEST(HashSet, ReserveThenFill)
{
    HashSet<int> set;
    set.reserve(500);
    for (int i = 0; i < 500; ++i)
        set.insert(i);
    EXPECT_EQ(set.size(), 500u);
}

TEST(HashSet, DeduplicationStream)
{
    // The extractor's exact usage pattern: many duplicate insertions,
    // count of unique survivors matters.
    HashSet<std::string> set;
    Rng rng(7);
    std::unordered_set<std::string> model;
    for (int i = 0; i < 5000; ++i) {
        std::string word = "w" + std::to_string(rng.uniform(0, 300));
        EXPECT_EQ(set.insert(word), model.insert(word).second);
    }
    EXPECT_EQ(set.size(), model.size());
}

} // namespace
} // namespace dsearch
