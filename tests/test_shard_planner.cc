/**
 * @file
 * Unit tests for document partitioning (shard/shard_planner.hh).
 *
 * The invariants the broker's merge correctness rests on: every
 * global document lands in exactly one shard, each shard's to_global
 * map is strictly increasing, shard-local tables align with the
 * global traversal order, and the whole partition is deterministic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fs/corpus.hh"
#include "fs/memory_fs.hh"
#include "index/serialize.hh"
#include "search/searcher.hh"
#include "shard/shard_planner.hh"

namespace dsearch {
namespace {

/** Checks the partition invariants for one build. */
void
expectValidPartition(const ShardedBuild &build)
{
    std::vector<bool> covered(build.global_docs.docCount(), false);
    for (const BuiltShard &shard : build.shards) {
        ASSERT_EQ(shard.docs.docCount(), shard.to_global.size());
        for (std::size_t i = 0; i < shard.to_global.size(); ++i) {
            DocId global = shard.to_global[i];
            ASSERT_LT(global, build.global_docs.docCount());
            EXPECT_FALSE(covered[global]) << "doc in two shards";
            covered[global] = true;
            if (i > 0)
                EXPECT_LT(shard.to_global[i - 1], global)
                    << "to_global must be strictly increasing";
            EXPECT_EQ(shard.docs.path(static_cast<DocId>(i)),
                      build.global_docs.path(global));
            EXPECT_EQ(shard.docs.sizeBytes(static_cast<DocId>(i)),
                      build.global_docs.sizeBytes(global));
        }
    }
    for (std::size_t d = 0; d < covered.size(); ++d)
        EXPECT_TRUE(covered[d]) << "doc " << d << " unassigned";
}

class ShardPlannerTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        CorpusGenerator gen(CorpusSpec::tiny());
        _fs = gen.generateInMemory().release();
        _root = gen.spec().root;
    }

    static void
    TearDownTestSuite()
    {
        delete _fs;
        _fs = nullptr;
    }

    static MemoryFs *_fs;
    static std::string _root;
};

MemoryFs *ShardPlannerTest::_fs = nullptr;
std::string ShardPlannerTest::_root;

TEST_F(ShardPlannerTest, RoundRobinPartitionsEveryDocumentOnce)
{
    ShardPlanOptions options;
    options.shards = 4;
    ShardedBuild build = ShardPlanner::build(*_fs, _root, options);
    ASSERT_EQ(build.shards.size(), 4u);
    expectValidPartition(build);

    // Round-robin spreads maximally evenly: shard sizes differ by at
    // most one document.
    std::size_t smallest = build.global_docs.docCount();
    std::size_t largest = 0;
    for (const BuiltShard &shard : build.shards) {
        smallest = std::min(smallest, shard.docs.docCount());
        largest = std::max(largest, shard.docs.docCount());
    }
    EXPECT_LE(largest - smallest, 1u);
}

TEST_F(ShardPlannerTest, HashPlacementMatchesShardForPath)
{
    ShardPlanOptions options;
    options.shards = 3;
    options.placement = ShardPlacement::HashByPath;
    ShardedBuild build = ShardPlanner::build(*_fs, _root, options);
    expectValidPartition(build);
    for (std::size_t s = 0; s < build.shards.size(); ++s) {
        const BuiltShard &shard = build.shards[s];
        for (std::size_t i = 0; i < shard.to_global.size(); ++i)
            EXPECT_EQ(ShardPlanner::shardForPath(
                          shard.docs.path(static_cast<DocId>(i)), 3),
                      s);
    }
}

TEST_F(ShardPlannerTest, SingleShardEqualsUnshardedTraversal)
{
    ShardPlanOptions options;
    options.shards = 1;
    ShardedBuild build = ShardPlanner::build(*_fs, _root, options);
    ASSERT_EQ(build.shards.size(), 1u);
    const BuiltShard &only = build.shards[0];
    ASSERT_EQ(only.docs.docCount(), build.global_docs.docCount());
    for (std::size_t i = 0; i < only.to_global.size(); ++i)
        EXPECT_EQ(only.to_global[i], static_cast<DocId>(i));
}

TEST_F(ShardPlannerTest, DeterministicAcrossBuilds)
{
    ShardPlanOptions options;
    options.shards = 5;
    options.placement = ShardPlacement::HashByPath;
    ShardedBuild a = ShardPlanner::build(*_fs, _root, options);
    ShardedBuild b = ShardPlanner::build(*_fs, _root, options);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    EXPECT_EQ(a.global_docs.docCount(), b.global_docs.docCount());
    for (std::size_t s = 0; s < a.shards.size(); ++s)
        EXPECT_EQ(a.shards[s].to_global, b.shards[s].to_global);
}

TEST(ShardPlannerSmall, MoreShardsThanDocumentsLeavesEmptyShards)
{
    MemoryFs fs;
    fs.addFile("/c/a.txt", "alpha beta");
    fs.addFile("/c/b.txt", "beta gamma");
    fs.addFile("/c/c.txt", "gamma alpha");
    ShardPlanOptions options;
    options.shards = 7;
    ShardedBuild build = ShardPlanner::build(fs, "/c", options);
    ASSERT_EQ(build.shards.size(), 7u);
    expectValidPartition(build);

    std::size_t empty = 0;
    for (const BuiltShard &shard : build.shards) {
        if (shard.docs.docCount() == 0) {
            ++empty;
            EXPECT_TRUE(shard.to_global.empty());
            // An empty shard still answers: no hits, no crash.
            Searcher searcher(shard.snapshot, shard.docs.docCount());
            EXPECT_TRUE(searcher.run(Query::parse("alpha")).empty());
        }
    }
    EXPECT_EQ(empty, 4u); // 3 docs round-robin into 7 shards
}

TEST(ShardPlannerSmall, ShardSnapshotsSurviveSerializeRoundTrip)
{
    MemoryFs fs;
    fs.addFile("/c/a.txt", "alpha beta");
    fs.addFile("/c/b.txt", "beta gamma");
    fs.addFile("/c/c.txt", "gamma alpha delta");
    fs.addFile("/c/d.txt", "delta");
    ShardPlanOptions options;
    options.shards = 2;
    ShardedBuild build = ShardPlanner::build(fs, "/c", options);

    for (const BuiltShard &shard : build.shards) {
        std::string path = ::testing::TempDir() + "shard_rt.bin";
        ASSERT_TRUE(saveSnapshotFile(shard.snapshot, shard.docs, path));
        IndexSnapshot reloaded;
        DocTable docs;
        ASSERT_TRUE(loadSnapshotFile(reloaded, docs, path));
        ASSERT_EQ(docs.docCount(), shard.docs.docCount());

        Searcher before(shard.snapshot, shard.docs.docCount());
        Searcher after(reloaded, docs.docCount());
        for (const char *text :
             {"alpha", "beta", "gamma", "delta", "alpha OR delta"}) {
            Query query = Query::parse(text);
            EXPECT_EQ(after.run(query), before.run(query)) << text;
        }
    }
}

TEST(ShardForPath, StableAndInRange)
{
    EXPECT_EQ(ShardPlanner::shardForPath("/any/path", 1), 0u);
    for (int i = 0; i < 50; ++i) {
        std::string path = "/dir/file" + std::to_string(i);
        std::size_t shard = ShardPlanner::shardForPath(path, 6);
        EXPECT_LT(shard, 6u);
        EXPECT_EQ(shard, ShardPlanner::shardForPath(path, 6));
    }
}

} // namespace
} // namespace dsearch
