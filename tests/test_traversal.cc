/**
 * @file
 * Unit tests for Stage 1 traversal (fs/traversal.hh).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fs/memory_fs.hh"
#include "fs/traversal.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

std::unique_ptr<MemoryFs>
makeTree()
{
    auto fs = std::make_unique<MemoryFs>();
    fs->addFile("/root/a.txt", "aaa");
    fs->addFile("/root/b.txt", "bb");
    fs->addFile("/root/sub1/c.txt", "c");
    fs->addFile("/root/sub1/deep/d.txt", "dddd");
    fs->addFile("/root/sub2/e.txt", "");
    fs->mkdirs("/root/emptydir");
    return fs;
}

TEST(Traversal, FindsEveryFile)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root");
    ASSERT_EQ(files.size(), 5u);
}

TEST(Traversal, DocIdsAreDenseAndOrdered)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root");
    for (std::size_t i = 0; i < files.size(); ++i)
        EXPECT_EQ(files[i].doc, static_cast<DocId>(i));
}

TEST(Traversal, DeterministicDepthFirstOrder)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root");
    std::vector<std::string> expected = {
        "/root/a.txt",
        "/root/b.txt",
        "/root/sub1/c.txt",
        "/root/sub1/deep/d.txt",
        "/root/sub2/e.txt",
    };
    ASSERT_EQ(files.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(files[i].path, expected[i]);
}

TEST(Traversal, SizesRecorded)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root");
    EXPECT_EQ(files[0].size, 3u);
    EXPECT_EQ(files[1].size, 2u);
    EXPECT_EQ(files[4].size, 0u);
}

TEST(Traversal, SingleFileRoot)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root/a.txt");
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0].path, "/root/a.txt");
    EXPECT_EQ(files[0].doc, 0u);
}

TEST(Traversal, MissingRootWarnsAndReturnsEmpty)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    int warnings = 0;
    LogSink old = setLogSink(
        [&warnings](LogLevel level, const std::string &) {
            if (level == LogLevel::Warn)
                ++warnings;
        });
    FileList files = generateFilenames(fs, "/nonexistent");
    setLogSink(std::move(old));
    EXPECT_TRUE(files.empty());
    EXPECT_EQ(warnings, 1);
}

TEST(Traversal, EmptyDirectoryYieldsNothing)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    FileList files = generateFilenames(fs, "/root/emptydir");
    EXPECT_TRUE(files.empty());
}

TEST(Traversal, CallbackFormMatchesListForm)
{
    auto fs_ptr = makeTree();
    MemoryFs &fs = *fs_ptr;
    std::vector<std::string> visited;
    traverseFiles(fs, "/root",
                  [&visited](const std::string &path, std::uint64_t) {
                      visited.push_back(path);
                  });
    FileList files = generateFilenames(fs, "/root");
    ASSERT_EQ(visited.size(), files.size());
    for (std::size_t i = 0; i < visited.size(); ++i)
        EXPECT_EQ(visited[i], files[i].path);
}

} // namespace
} // namespace dsearch
