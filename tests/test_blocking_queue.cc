/**
 * @file
 * Unit and concurrency tests for BlockingQueue
 * (pipeline/blocking_queue.hh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "pipeline/blocking_queue.hh"

namespace dsearch {
namespace {

TEST(BlockingQueue, FifoOrderSingleThread)
{
    BlockingQueue<int> queue;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(queue.push(i));
    int out;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out, i);
    }
}

TEST(BlockingQueue, SizeTracksContents)
{
    BlockingQueue<int> queue;
    EXPECT_EQ(queue.size(), 0u);
    queue.push(1);
    queue.push(2);
    EXPECT_EQ(queue.size(), 2u);
    int out;
    queue.pop(out);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(BlockingQueue, TryPopNonBlocking)
{
    BlockingQueue<int> queue;
    int out = -1;
    EXPECT_FALSE(queue.tryPop(out));
    queue.push(5);
    EXPECT_TRUE(queue.tryPop(out));
    EXPECT_EQ(out, 5);
    EXPECT_FALSE(queue.tryPop(out));
}

TEST(BlockingQueue, CloseDrainsRemainingItems)
{
    BlockingQueue<int> queue;
    queue.push(1);
    queue.push(2);
    queue.close();
    int out;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(queue.pop(out));
}

TEST(BlockingQueue, PopBatchDrainsUpToMax)
{
    BlockingQueue<int> queue;
    for (int i = 0; i < 10; ++i)
        queue.push(i);

    std::vector<int> batch;
    ASSERT_TRUE(queue.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    ASSERT_TRUE(queue.popBatch(batch, 100));
    EXPECT_EQ(batch.size(), 6u); // takes what is there, FIFO
    EXPECT_EQ(batch.front(), 4);
    EXPECT_EQ(batch.back(), 9);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BlockingQueue, PopBatchStopsWhenClosedAndDrained)
{
    BlockingQueue<int> queue;
    queue.push(7);
    queue.close();
    std::vector<int> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8));
    EXPECT_EQ(batch, (std::vector<int>{7}));
    EXPECT_FALSE(queue.popBatch(batch, 8));
    EXPECT_TRUE(batch.empty());
}

TEST(BlockingQueue, PopBatchBlocksUntilPush)
{
    BlockingQueue<int> queue;
    std::vector<int> received;
    std::thread consumer([&queue, &received] {
        std::vector<int> batch;
        if (queue.popBatch(batch, 16))
            received = batch;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(42);
    consumer.join();
    EXPECT_EQ(received, (std::vector<int>{42}));
}

TEST(BlockingQueue, PopBatchUnblocksBoundedProducers)
{
    BlockingQueue<int> queue(2);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));

    // Two producers blocked on a full queue; one batched pop must
    // free room for both.
    std::atomic<int> pushed{0};
    std::thread p1([&] { queue.push(3); ++pushed; });
    std::thread p2([&] { queue.push(4); ++pushed; });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(pushed.load(), 0);

    std::vector<int> batch;
    ASSERT_TRUE(queue.popBatch(batch, 2));
    EXPECT_EQ(batch.size(), 2u);
    p1.join();
    p2.join();
    EXPECT_EQ(pushed.load(), 2);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(BlockingQueue, BatchedConsumersSeeEveryElement)
{
    BlockingQueue<int> queue(32);
    constexpr int n = 5000;
    std::atomic<long long> sum{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&queue, &sum] {
            std::vector<int> batch;
            long long local = 0;
            while (queue.popBatch(batch, 7))
                for (int v : batch)
                    local += v;
            sum += local;
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
        producers.emplace_back([&queue, p] {
            for (int i = p; i < n; i += 2)
                queue.push(i);
        });
    }
    for (auto &producer : producers)
        producer.join();
    queue.close();
    for (auto &consumer : consumers)
        consumer.join();
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(BlockingQueue, PushAfterCloseFails)
{
    BlockingQueue<int> queue;
    queue.close();
    EXPECT_FALSE(queue.push(1));
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BlockingQueue, PopBlocksUntilPush)
{
    BlockingQueue<int> queue;
    int received = -1;
    std::thread consumer([&queue, &received] {
        int out;
        if (queue.pop(out))
            received = out;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(42);
    consumer.join();
    EXPECT_EQ(received, 42);
}

TEST(BlockingQueue, BoundedPushBlocksUntilPop)
{
    BlockingQueue<int> queue(2);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));

    std::atomic<bool> third_pushed{false};
    std::thread producer([&queue, &third_pushed] {
        queue.push(3);
        third_pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(third_pushed.load());

    int out;
    ASSERT_TRUE(queue.pop(out));
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_EQ(queue.size(), 2u);
}

TEST(BlockingQueue, CloseWakesBlockedConsumer)
{
    BlockingQueue<int> queue;
    std::atomic<bool> finished{false};
    std::thread consumer([&queue, &finished] {
        int out;
        EXPECT_FALSE(queue.pop(out));
        finished = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
    EXPECT_TRUE(finished.load());
}

TEST(BlockingQueue, CloseWakesBlockedProducer)
{
    BlockingQueue<int> queue(1);
    queue.push(1);
    std::atomic<bool> finished{false};
    std::thread producer([&queue, &finished] {
        EXPECT_FALSE(queue.push(2)); // blocked, then closed
        finished = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    EXPECT_TRUE(finished.load());
}

TEST(BlockingQueue, MpmcNoLossNoDuplication)
{
    // 4 producers x 2000 items through a small buffer into 4
    // consumers: every value must arrive exactly once.
    const int producers = 4;
    const int per_producer = 2000;
    BlockingQueue<int> queue(16);

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&queue, p] {
            for (int i = 0; i < per_producer; ++i)
                ASSERT_TRUE(queue.push(p * per_producer + i));
        });
    }

    std::vector<std::vector<int>> received(4);
    std::vector<std::thread> consumers;
    for (int c = 0; c < 4; ++c) {
        consumers.emplace_back([&queue, &received, c] {
            int out;
            while (queue.pop(out))
                received[c].push_back(out);
        });
    }

    for (std::thread &t : threads)
        t.join();
    queue.close();
    for (std::thread &t : consumers)
        t.join();

    std::vector<int> all;
    for (const auto &chunk : received)
        all.insert(all.end(), chunk.begin(), chunk.end());
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(producers * per_producer));
    std::sort(all.begin(), all.end());
    for (int i = 0; i < producers * per_producer; ++i)
        ASSERT_EQ(all[i], i) << "value lost or duplicated";
}

TEST(BlockingQueue, PerProducerOrderPreserved)
{
    BlockingQueue<std::pair<int, int>> queue(8);
    const int per_producer = 1000;
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
        producers.emplace_back([&queue, p] {
            for (int i = 0; i < per_producer; ++i)
                queue.push({p, i});
        });
    }
    std::vector<int> last_seen(2, -1);
    std::thread consumer([&queue, &last_seen] {
        std::pair<int, int> item;
        while (queue.pop(item)) {
            ASSERT_GT(item.second, last_seen[item.first])
                << "per-producer FIFO violated";
            last_seen[item.first] = item.second;
        }
    });
    for (std::thread &t : producers)
        t.join();
    queue.close();
    consumer.join();
    EXPECT_EQ(last_seen[0], per_producer - 1);
    EXPECT_EQ(last_seen[1], per_producer - 1);
}

TEST(BlockingQueue, UnboundedConsumersSkipProducerNotify)
{
    // Regression: pop/popBatch/tryPop used to issue a _not_full
    // notify per freed slot even on unbounded queues, where no
    // producer can ever be blocked — pure wake-up overhead on the
    // consumer hot path. The guard must keep the count at zero.
    BlockingQueue<int> queue; // capacity 0 = unbounded
    for (int i = 0; i < 32; ++i)
        queue.push(i);
    int out;
    queue.pop(out);
    queue.tryPop(out);
    std::vector<int> batch;
    queue.popBatch(batch, 16);
    EXPECT_EQ(queue.producerNotifyCount(), 0u);
}

TEST(BlockingQueue, BoundedConsumersStillNotifyProducers)
{
    BlockingQueue<int> queue(8);
    for (int i = 0; i < 8; ++i)
        queue.push(i);
    int out;
    queue.pop(out);
    queue.tryPop(out);
    std::vector<int> batch;
    ASSERT_TRUE(queue.popBatch(batch, 4));
    // One notify per freed slot: 1 (pop) + 1 (tryPop) + 4 (batch).
    EXPECT_EQ(queue.producerNotifyCount(), 6u);
}

TEST(BlockingQueue, MoveOnlyElements)
{
    BlockingQueue<std::unique_ptr<int>> queue;
    queue.push(std::make_unique<int>(9));
    std::unique_ptr<int> out;
    ASSERT_TRUE(queue.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 9);
}

} // namespace
} // namespace dsearch
