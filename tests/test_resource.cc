/**
 * @file
 * Unit tests for simulated resources (sim/resource.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hh"

namespace dsearch {
namespace {

TEST(Resource, GrantsUpToServerCount)
{
    EventQueue eq;
    Resource res(eq, "cpu", 2);
    int granted = 0;
    res.acquire([&granted] { ++granted; });
    res.acquire([&granted] { ++granted; });
    res.acquire([&granted] { ++granted; }); // must wait
    eq.runAll();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(res.busy(), 2u);
    EXPECT_EQ(res.queueLength(), 1u);
}

TEST(Resource, ReleaseHandsOverFifo)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(0); });
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    eq.runAll();
    ASSERT_EQ(order.size(), 1u);

    res.release();
    eq.runAll();
    res.release();
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(res.busy(), 1u);
    res.release();
    EXPECT_EQ(res.busy(), 0u);
}

TEST(Resource, UseHoldsForServiceTime)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    SimTime done_at = 0;
    res.use(500, [&eq, &done_at] { done_at = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done_at, 500u);
    EXPECT_EQ(res.busy(), 0u);
}

TEST(Resource, SerialUseQueues)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    std::vector<SimTime> finish;
    for (int i = 0; i < 3; ++i)
        res.use(100, [&eq, &finish] { finish.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(finish.size(), 3u);
    EXPECT_EQ(finish[0], 100u);
    EXPECT_EQ(finish[1], 200u);
    EXPECT_EQ(finish[2], 300u);
}

TEST(Resource, ParallelServersOverlap)
{
    EventQueue eq;
    Resource res(eq, "r", 3);
    std::vector<SimTime> finish;
    for (int i = 0; i < 3; ++i)
        res.use(100, [&eq, &finish] { finish.push_back(eq.now()); });
    eq.runAll();
    for (SimTime t : finish)
        EXPECT_EQ(t, 100u);
}

TEST(Resource, BusySecondsIntegrates)
{
    EventQueue eq;
    Resource res(eq, "r", 2);
    res.use(1000000, [] {});
    res.use(500000, [] {});
    eq.runAll();
    EXPECT_NEAR(res.busySeconds(), 1.5, 1e-9);
    EXPECT_EQ(res.grants(), 2u);
}

TEST(Resource, WaitSecondsAccumulates)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    res.use(1000000, [] {});
    res.use(1000000, [] {}); // waits 1 s
    eq.runAll();
    EXPECT_NEAR(res.waitSeconds(), 1.0, 1e-9);
}

TEST(ResourceDeath, ReleaseWithoutAcquirePanics)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    EXPECT_DEATH(res.release(), "release without acquire");
}

TEST(ResourceDeath, ZeroServersPanics)
{
    EventQueue eq;
    EXPECT_DEATH(Resource(eq, "r", 0), "at least one server");
}

TEST(SimSemaphore, CountsDownThenBlocks)
{
    EventQueue eq;
    SimSemaphore sem(eq, 2);
    int acquired = 0;
    sem.p([&acquired] { ++acquired; });
    sem.p([&acquired] { ++acquired; });
    sem.p([&acquired] { ++acquired; });
    eq.runAll();
    EXPECT_EQ(acquired, 2);
    EXPECT_EQ(sem.waiting(), 1u);
    sem.v();
    eq.runAll();
    EXPECT_EQ(acquired, 3);
}

TEST(SimSemaphore, VWithoutWaitersIncrementsCount)
{
    EventQueue eq;
    SimSemaphore sem(eq, 0);
    sem.v();
    EXPECT_EQ(sem.count(), 1u);
    int acquired = 0;
    sem.p([&acquired] { ++acquired; });
    eq.runAll();
    EXPECT_EQ(acquired, 1);
}

TEST(SimQueue, PushPopFifo)
{
    EventQueue eq;
    SimQueue queue(eq, 4);
    std::vector<std::size_t> received;
    queue.push(11, [] {});
    queue.push(22, [] {});
    queue.pop([&](bool ok, std::size_t item) {
        EXPECT_TRUE(ok);
        received.push_back(item);
    });
    queue.pop([&](bool ok, std::size_t item) {
        EXPECT_TRUE(ok);
        received.push_back(item);
    });
    eq.runAll();
    EXPECT_EQ(received, (std::vector<std::size_t>{11, 22}));
}

TEST(SimQueue, BoundedPushBlocksUntilPop)
{
    EventQueue eq;
    SimQueue queue(eq, 1);
    int pushes_done = 0;
    queue.push(1, [&pushes_done] { ++pushes_done; });
    queue.push(2, [&pushes_done] { ++pushes_done; }); // blocked
    eq.runAll();
    EXPECT_EQ(pushes_done, 1);

    std::size_t got = 0;
    queue.pop([&got](bool ok, std::size_t item) {
        EXPECT_TRUE(ok);
        got = item;
    });
    eq.runAll();
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(pushes_done, 2); // the parked push completed
    EXPECT_EQ(queue.size(), 1u);
}

TEST(SimQueue, PopBlocksUntilPush)
{
    EventQueue eq;
    SimQueue queue(eq, 4);
    std::size_t got = 999;
    queue.pop([&got](bool ok, std::size_t item) {
        EXPECT_TRUE(ok);
        got = item;
    });
    eq.runAll();
    EXPECT_EQ(got, 999u); // still waiting
    queue.push(7, [] {});
    eq.runAll();
    EXPECT_EQ(got, 7u);
}

TEST(SimQueue, CloseDrainsThenFails)
{
    EventQueue eq;
    SimQueue queue(eq, 4);
    queue.push(1, [] {});
    queue.close();

    std::vector<bool> oks;
    queue.pop([&oks](bool ok, std::size_t) { oks.push_back(ok); });
    queue.pop([&oks](bool ok, std::size_t) { oks.push_back(ok); });
    eq.runAll();
    ASSERT_EQ(oks.size(), 2u);
    EXPECT_TRUE(oks[0]);
    EXPECT_FALSE(oks[1]);
}

TEST(SimQueue, CloseWakesWaitingConsumers)
{
    EventQueue eq;
    SimQueue queue(eq, 4);
    int failed = 0;
    queue.pop([&failed](bool ok, std::size_t) {
        if (!ok)
            ++failed;
    });
    queue.pop([&failed](bool ok, std::size_t) {
        if (!ok)
            ++failed;
    });
    eq.runAll();
    queue.close();
    eq.runAll();
    EXPECT_EQ(failed, 2);
}

} // namespace
} // namespace dsearch
