/**
 * @file
 * Unit and property tests for the index generator
 * (core/index_generator.hh).
 *
 * The central property: every parallel organization must produce an
 * index (or replica set) whose merged contents equal the sequential
 * index, for any thread configuration.
 */

#include <gtest/gtest.h>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "index/index_join.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

/** Shared tiny corpus for all tests in this file. */
class IndexGeneratorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        CorpusSpec spec = CorpusSpec::tiny(11);
        _fs = CorpusGenerator(spec).generateInMemory().release();
        IndexGenerator sequential(*_fs, "/", Config::sequential());
        _reference = new BuildResult(sequential.build());
        _reference->primary().sortPostings();
    }

    static void
    TearDownTestSuite()
    {
        delete _reference;
        _reference = nullptr;
        delete _fs;
        _fs = nullptr;
    }

    /** Merge a result's indices and compare with the reference. */
    static void
    expectEquivalent(BuildResult result)
    {
        InvertedIndex merged =
            joinSequential(std::move(result.indices));
        merged.sortPostings();
        EXPECT_TRUE(sameContents(merged, _reference->primary()))
            << "divergent index for " << result.config.describe();
        EXPECT_EQ(result.docs.docCount(),
                  _reference->docs.docCount());
    }

    static MemoryFs *_fs;
    static BuildResult *_reference;
};

MemoryFs *IndexGeneratorTest::_fs = nullptr;
BuildResult *IndexGeneratorTest::_reference = nullptr;

TEST_F(IndexGeneratorTest, SequentialBuildIsSane)
{
    const BuildResult &r = *_reference;
    EXPECT_EQ(r.indices.size(), 1u);
    EXPECT_GT(r.primary().termCount(), 0u);
    EXPECT_GT(r.primary().postingCount(), r.primary().termCount());
    EXPECT_EQ(r.docs.docCount(), CorpusSpec::tiny(11).file_count);
    EXPECT_EQ(r.extraction.files, r.docs.docCount());
    EXPECT_EQ(r.extraction.read_errors, 0u);
    EXPECT_GT(r.extraction.tokens, r.extraction.unique_terms);
}

TEST_F(IndexGeneratorTest, SequentialStageTimesPopulated)
{
    const StageTimes &t = _reference->times;
    EXPECT_GT(t.total, 0.0);
    EXPECT_GE(t.filename_generation, 0.0);
    EXPECT_GT(t.read_and_extract, 0.0);
    EXPECT_GT(t.index_update, 0.0);
    EXPECT_EQ(t.join, 0.0);
    EXPECT_LE(t.filename_generation + t.read_and_extract
                  + t.index_update,
              t.total * 1.5);
}

TEST_F(IndexGeneratorTest, SequentialIsDeterministic)
{
    IndexGenerator generator(*_fs, "/", Config::sequential());
    BuildResult again = generator.build();
    again.primary().sortPostings();
    EXPECT_TRUE(
        sameContents(again.primary(), _reference->primary()));
}

TEST_F(IndexGeneratorTest, Impl1DirectInsertEquivalent)
{
    IndexGenerator generator(*_fs, "/", Config::sharedLocked(4, 0));
    BuildResult result = generator.build();
    EXPECT_EQ(result.indices.size(), 1u);
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, Impl1BufferedEquivalent)
{
    IndexGenerator generator(*_fs, "/", Config::sharedLocked(3, 2));
    BuildResult result = generator.build();
    EXPECT_EQ(result.indices.size(), 1u);
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, Impl2JoinsToSingleIndex)
{
    IndexGenerator generator(*_fs, "/",
                             Config::replicatedJoin(3, 2, 2));
    BuildResult result = generator.build();
    EXPECT_EQ(result.indices.size(), 1u);
    EXPECT_GE(result.times.join, 0.0);
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, Impl3KeepsReplicas)
{
    Config cfg = Config::replicatedNoJoin(4, 2);
    IndexGenerator generator(*_fs, "/", cfg);
    BuildResult result = generator.build();
    EXPECT_EQ(result.indices.size(), cfg.replicaCount());
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, Impl3ExtractorReplicas)
{
    Config cfg = Config::replicatedNoJoin(5, 0);
    IndexGenerator generator(*_fs, "/", cfg);
    BuildResult result = generator.build();
    EXPECT_EQ(result.indices.size(), 5u);
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, PipelinedStage1Equivalent)
{
    Config cfg = Config::replicatedNoJoin(3, 0);
    cfg.pipelined_stage1 = true;
    IndexGenerator generator(*_fs, "/", cfg);
    BuildResult result = generator.build();
    EXPECT_EQ(result.docs.docCount(), _reference->docs.docCount());
    expectEquivalent(std::move(result));
}

TEST_F(IndexGeneratorTest, PipelinedStage1SharedIndex)
{
    Config cfg = Config::sharedLocked(2, 1);
    cfg.pipelined_stage1 = true;
    IndexGenerator generator(*_fs, "/", cfg);
    expectEquivalent(generator.build());
}

TEST_F(IndexGeneratorTest, ImmediateModeSequentialEquivalent)
{
    Config cfg = Config::sequential();
    cfg.en_bloc = false;
    IndexGenerator generator(*_fs, "/", cfg);
    expectEquivalent(generator.build());
}

TEST_F(IndexGeneratorTest, ImmediateModeParallelEquivalent)
{
    Config cfg = Config::sharedLocked(3, 0);
    cfg.en_bloc = false;
    IndexGenerator generator(*_fs, "/", cfg);
    expectEquivalent(generator.build());
}

TEST_F(IndexGeneratorTest, DistributionStrategiesEquivalent)
{
    for (DistributionKind kind :
         {DistributionKind::RoundRobin, DistributionKind::SizeBalanced,
          DistributionKind::SharedQueue,
          DistributionKind::WorkStealing}) {
        Config cfg = Config::replicatedNoJoin(3, 0);
        cfg.distribution = kind;
        IndexGenerator generator(*_fs, "/", cfg);
        expectEquivalent(generator.build());
    }
}

TEST_F(IndexGeneratorTest, TinyQueueCapacityStillCorrect)
{
    Config cfg = Config::replicatedJoin(4, 3, 1);
    cfg.queue_capacity = 1; // maximal back-pressure
    IndexGenerator generator(*_fs, "/", cfg);
    expectEquivalent(generator.build());
}

TEST_F(IndexGeneratorTest, MoreThreadsThanFilesWorks)
{
    MemoryFs small;
    small.addFile("/only.txt", "one single file");
    Config cfg = Config::replicatedJoin(8, 6, 3);
    IndexGenerator generator(small, "/", cfg);
    BuildResult result = generator.build();
    ASSERT_EQ(result.indices.size(), 1u);
    EXPECT_EQ(result.primary().termCount(), 3u);
    EXPECT_EQ(result.docs.docCount(), 1u);
}

TEST_F(IndexGeneratorTest, EmptyRootProducesEmptyIndex)
{
    MemoryFs empty;
    empty.mkdirs("/nothing");
    setLogLevel(LogLevel::Silent);
    IndexGenerator generator(empty, "/nothing",
                             Config::sharedLocked(2, 1));
    BuildResult result = generator.build();
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(result.docs.docCount(), 0u);
    EXPECT_TRUE(result.primary().empty());
}

TEST_F(IndexGeneratorTest, ExtractionStatsAggregateAcrossThreads)
{
    IndexGenerator generator(*_fs, "/",
                             Config::replicatedNoJoin(4, 0));
    BuildResult result = generator.build();
    EXPECT_EQ(result.extraction.files,
              _reference->extraction.files);
    EXPECT_EQ(result.extraction.tokens,
              _reference->extraction.tokens);
    EXPECT_EQ(result.extraction.unique_terms,
              _reference->extraction.unique_terms);
    EXPECT_EQ(result.extraction.bytes, _reference->extraction.bytes);
}

/**
 * The central equivalence property, swept over implementations and
 * thread tuples.
 */
struct SweepParam
{
    Implementation impl;
    unsigned x, y, z;
};

class GeneratorSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(GeneratorSweep, MatchesSequentialIndex)
{
    static MemoryFs *fs =
        CorpusGenerator(CorpusSpec::tiny(23)).generateInMemory()
            .release();
    static InvertedIndex *reference = [] {
        IndexGenerator sequential(*fs, "/", Config::sequential());
        auto *index =
            new InvertedIndex(std::move(sequential.build().indices
                                            .front()));
        index->sortPostings();
        return index;
    }();

    SweepParam p = GetParam();
    Config cfg;
    cfg.impl = p.impl;
    cfg.extractors = p.x;
    cfg.updaters = p.y;
    cfg.joiners = p.z;
    IndexGenerator generator(*fs, "/", cfg);
    BuildResult result = generator.build();
    InvertedIndex merged = joinSequential(std::move(result.indices));
    merged.sortPostings();
    ASSERT_TRUE(sameContents(merged, *reference))
        << "divergent index for " << cfg.describe();
}

INSTANTIATE_TEST_SUITE_P(
    ConfigTuples, GeneratorSweep,
    ::testing::Values(
        SweepParam{Implementation::SharedLocked, 1, 0, 0},
        SweepParam{Implementation::SharedLocked, 2, 0, 0},
        SweepParam{Implementation::SharedLocked, 5, 0, 0},
        SweepParam{Implementation::SharedLocked, 1, 1, 0},
        SweepParam{Implementation::SharedLocked, 3, 1, 0},
        SweepParam{Implementation::SharedLocked, 3, 2, 0},
        SweepParam{Implementation::SharedLocked, 8, 4, 0},
        SweepParam{Implementation::ReplicatedJoin, 1, 0, 1},
        SweepParam{Implementation::ReplicatedJoin, 3, 0, 1},
        SweepParam{Implementation::ReplicatedJoin, 3, 5, 1},
        SweepParam{Implementation::ReplicatedJoin, 6, 2, 1},
        SweepParam{Implementation::ReplicatedJoin, 8, 4, 1},
        SweepParam{Implementation::ReplicatedJoin, 4, 3, 2},
        SweepParam{Implementation::ReplicatedJoin, 5, 5, 4},
        SweepParam{Implementation::ReplicatedNoJoin, 1, 0, 0},
        SweepParam{Implementation::ReplicatedNoJoin, 3, 2, 0},
        SweepParam{Implementation::ReplicatedNoJoin, 6, 2, 0},
        SweepParam{Implementation::ReplicatedNoJoin, 9, 4, 0},
        SweepParam{Implementation::ReplicatedNoJoin, 2, 7, 0}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        const SweepParam &p = info.param;
        std::string impl_tag;
        switch (p.impl) {
          case Implementation::SharedLocked:
            impl_tag = "Impl1";
            break;
          case Implementation::ReplicatedJoin:
            impl_tag = "Impl2";
            break;
          case Implementation::ReplicatedNoJoin:
            impl_tag = "Impl3";
            break;
          default:
            impl_tag = "Seq";
            break;
        }
        return impl_tag + "_x" + std::to_string(p.x) + "_y"
               + std::to_string(p.y) + "_z" + std::to_string(p.z);
    });

TEST_F(IndexGeneratorTest, ShardedLockEquivalent)
{
    for (std::size_t shards : {2u, 8u, 64u}) {
        Config cfg = Config::sharedLocked(4, 0);
        cfg.lock_shards = shards;
        IndexGenerator generator(*_fs, "/", cfg);
        BuildResult result = generator.build();
        EXPECT_EQ(result.indices.size(), 1u);
        expectEquivalent(std::move(result));
    }
}

TEST_F(IndexGeneratorTest, ShardedLockWithUpdatersEquivalent)
{
    Config cfg = Config::sharedLocked(3, 2);
    cfg.lock_shards = 16;
    IndexGenerator generator(*_fs, "/", cfg);
    expectEquivalent(generator.build());
}

TEST(IndexGeneratorConfig, ShardedLockValidation)
{
    Config cfg = Config::replicatedNoJoin(2, 1);
    cfg.lock_shards = 4;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "lock sharding");

    Config cfg2 = Config::sharedLocked(2, 1);
    cfg2.lock_shards = 0;
    EXPECT_EXIT(cfg2.validate(), ::testing::ExitedWithCode(1),
                "lock_shards");

    Config cfg3 = Config::sharedLocked(2, 1);
    cfg3.lock_shards = 4;
    cfg3.en_bloc = false;
    EXPECT_EXIT(cfg3.validate(), ::testing::ExitedWithCode(1),
                "immediate");
}

TEST(IndexGeneratorStages, MeasureSequentialStagesShape)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(31)).generateInMemory();
    StageTimes times =
        IndexGenerator::measureSequentialStages(*fs, "/");
    EXPECT_GT(times.read_files, 0.0);
    EXPECT_GT(times.read_and_extract, 0.0);
    EXPECT_GT(times.index_update, 0.0);
    // Reading + extracting includes reading.
    EXPECT_GE(times.read_and_extract, times.read_files * 0.5);
    EXPECT_GT(times.total, 0.0);
}

} // namespace
} // namespace dsearch
