/**
 * @file
 * Unit tests for generator configuration (core/config.hh).
 */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace dsearch {
namespace {

TEST(Config, ImplementationNames)
{
    EXPECT_STREQ(name(Implementation::Sequential), "Sequential");
    EXPECT_STREQ(name(Implementation::SharedLocked),
                 "Implementation 1");
    EXPECT_STREQ(name(Implementation::ReplicatedJoin),
                 "Implementation 2");
    EXPECT_STREQ(name(Implementation::ReplicatedNoJoin),
                 "Implementation 3");
}

TEST(Config, TupleStringMatchesPaperNotation)
{
    Config cfg = Config::replicatedJoin(3, 5, 1);
    EXPECT_EQ(cfg.tupleString(), "(3, 5, 1)");
    EXPECT_EQ(cfg.describe(), "Implementation 2 (3, 5, 1)");
    EXPECT_EQ(Config::sequential().describe(), "Sequential");
}

TEST(Config, FactoriesProduceValidConfigs)
{
    Config::sequential().validate();
    Config::sharedLocked(3, 1).validate();
    Config::sharedLocked(4).validate(); // y = 0: direct insert
    Config::replicatedJoin(6, 2, 1).validate();
    Config::replicatedNoJoin(9, 4).validate();
    SUCCEED();
}

TEST(Config, ReplicaCount)
{
    EXPECT_EQ(Config::replicatedNoJoin(6, 2).replicaCount(), 2u);
    EXPECT_EQ(Config::replicatedNoJoin(6, 0).replicaCount(), 6u);
    EXPECT_EQ(Config::replicatedJoin(3, 5, 1).replicaCount(), 5u);
}

TEST(ConfigDeath, ZeroExtractorsIsFatal)
{
    Config cfg = Config::sharedLocked(1);
    cfg.extractors = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "x >= 1");
}

TEST(ConfigDeath, SequentialMustBeSingleThreaded)
{
    Config cfg = Config::sequential();
    cfg.extractors = 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "sequential");
}

TEST(ConfigDeath, SequentialCannotPipelineStage1)
{
    Config cfg = Config::sequential();
    cfg.pipelined_stage1 = true;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "parallel");
}

TEST(ConfigDeath, Impl1CannotJoin)
{
    Config cfg = Config::sharedLocked(3, 1);
    cfg.joiners = 1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "nothing to join");
}

TEST(ConfigDeath, Impl2NeedsJoiners)
{
    Config cfg = Config::replicatedJoin(3, 2, 1);
    cfg.joiners = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "z >= 1");
}

TEST(ConfigDeath, Impl3CannotJoin)
{
    Config cfg = Config::replicatedNoJoin(3, 2);
    cfg.joiners = 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "never joins");
}

TEST(ConfigDeath, ZeroQueueCapacityIsFatal)
{
    Config cfg = Config::sharedLocked(2, 1);
    cfg.queue_capacity = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "capacities");
}

} // namespace
} // namespace dsearch
