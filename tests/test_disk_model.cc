/**
 * @file
 * Unit tests for the storage model (sim/disk_model.hh).
 */

#include <gtest/gtest.h>

#include "sim/disk_model.hh"

namespace dsearch {
namespace {

DiskParams
testParams()
{
    DiskParams p;
    p.seek_interleaved_ms = 3.0;
    p.seek_scan_ms = 1.0;
    p.seek_floor_ms = 0.4;
    p.depth_half = 1.0;
    p.thrash_depth = 4.0;
    p.thrash_ms_per_extra = 0.5;
    p.bandwidth_mbps = 100.0;
    p.channels = 4;
    p.cached_fraction = 0.0;
    return p;
}

TEST(DiskModel, ModeOrderingAtDepthZero)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    SimTime interleaved =
        disk.serviceTime(4096, 1, ReadMode::Interleaved, 0);
    SimTime scan = disk.serviceTime(4096, 1, ReadMode::Scan, 0);
    SimTime parallel =
        disk.serviceTime(4096, 1, ReadMode::Parallel, 0);
    EXPECT_GT(interleaved, scan);
    // At depth 0 the parallel seek equals the scan seek.
    EXPECT_EQ(parallel, scan);
}

TEST(DiskModel, DeeperQueueReducesSeek)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    SimTime d0 = disk.serviceTime(4096, 1, ReadMode::Parallel, 0);
    SimTime d2 = disk.serviceTime(4096, 1, ReadMode::Parallel, 2);
    SimTime d4 = disk.serviceTime(4096, 1, ReadMode::Parallel, 4);
    EXPECT_GT(d0, d2);
    EXPECT_GT(d2, d4);
}

TEST(DiskModel, ThrashingBeyondThreshold)
{
    DiskParams params = testParams();
    params.channels = 16; // window wide enough to observe thrashing
    EventQueue eq;
    DiskModel disk(eq, params, 1);
    SimTime at_knee = disk.serviceTime(4096, 1, ReadMode::Parallel, 4);
    SimTime past_knee =
        disk.serviceTime(4096, 1, ReadMode::Parallel, 10);
    EXPECT_GT(past_knee, at_knee);
}

TEST(DiskModel, TransferScalesWithBytes)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    SimTime small = disk.serviceTime(1 << 10, 1, ReadMode::Scan, 0);
    SimTime large = disk.serviceTime(100 << 20, 1, ReadMode::Scan, 0);
    EXPECT_GT(large, small);
    // 100 MiB at 100 MiB/s is about a second.
    EXPECT_NEAR(simToSec(large), 1.0, 0.1);
}

TEST(DiskModel, CoarsenedEntriesPaySeekPerFile)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    SimTime one = disk.serviceTime(4096, 1, ReadMode::Scan, 0);
    SimTime four = disk.serviceTime(4096, 4, ReadMode::Scan, 0);
    // Three extra seeks at 1 ms each.
    EXPECT_NEAR(simToSec(four) - simToSec(one), 0.003, 1e-4);
}

TEST(DiskModel, CacheResidencyDeterministic)
{
    DiskParams p = testParams();
    p.cached_fraction = 0.5;
    EventQueue eq1, eq2;
    DiskModel a(eq1, p, 99), b(eq2, p, 99);
    for (std::size_t i = 0; i < 1000; ++i)
        EXPECT_EQ(a.cached(i), b.cached(i));
}

TEST(DiskModel, CacheFractionApproximatelyHonored)
{
    DiskParams p = testParams();
    p.cached_fraction = 0.3;
    EventQueue eq;
    DiskModel disk(eq, p, 7);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (disk.cached(i))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(DiskModel, ZeroCacheFractionNeverCached)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 7);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(disk.cached(i));
}

TEST(DiskModel, ServesOneRequestAtATime)
{
    // The head is a single server: four 1 ms requests finish at
    // 1, 2, 3, 4 ms regardless of the NCQ window.
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    std::vector<SimTime> finish;
    for (int i = 0; i < 4; ++i)
        disk.read(0, 1, ReadMode::Scan,
                  [&eq, &finish] { finish.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(finish.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(finish[i], static_cast<SimTime>((i + 1) * 1000));
    EXPECT_NEAR(disk.busySeconds(), 0.004, 1e-6);
}

TEST(DiskModel, SeekDiscountCapsAtNcqWindow)
{
    DiskParams p = testParams();
    p.channels = 3;
    p.thrash_depth = 100.0; // isolate the cap from thrashing
    EventQueue eq;
    DiskModel disk(eq, p, 1);
    SimTime at_window = disk.serviceTime(0, 1, ReadMode::Parallel, 3);
    SimTime past_window =
        disk.serviceTime(0, 1, ReadMode::Parallel, 30);
    EXPECT_EQ(at_window, past_window);
}

TEST(DiskModel, FractionalCountsScaleSeeks)
{
    EventQueue eq;
    DiskModel disk(eq, testParams(), 1);
    SimTime half = disk.serviceTime(0, 0.5, ReadMode::Scan, 0);
    SimTime full = disk.serviceTime(0, 1.0, ReadMode::Scan, 0);
    EXPECT_NEAR(simToSec(full), 2.0 * simToSec(half), 1e-9);
}

} // namespace
} // namespace dsearch
