/**
 * @file
 * Conformance suite for the pluggable Stage 3 backends
 * (index/index_backend.hh): every organization, fed the same blocks,
 * must seal to a snapshot with identical per-term content — the
 * contract that lets the generator treat organizations uniformly and
 * lets searchers ignore how the index was built.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "index/index_backend.hh"
#include "search/multi_searcher.hh"
#include "search/searcher.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** The corpus every backend ingests: doc -> its unique terms. */
std::vector<std::vector<std::string>>
corpusBlocks()
{
    std::vector<std::vector<std::string>> docs;
    for (DocId doc = 0; doc < 40; ++doc) {
        std::vector<std::string> terms;
        terms.push_back("w" + std::to_string(doc % 7));
        terms.push_back("w" + std::to_string(doc % 11));
        terms.push_back("only" + std::to_string(doc));
        std::sort(terms.begin(), terms.end());
        terms.erase(std::unique(terms.begin(), terms.end()),
                    terms.end());
        docs.push_back(std::move(terms));
    }
    return docs;
}

/** All postings of @p term across every segment, sorted. */
std::vector<DocId>
allPostings(const IndexSnapshot &snapshot, const std::string &term)
{
    std::vector<DocId> docs;
    for (std::size_t i = 0; i < snapshot.segmentCount(); ++i) {
        PostingCursor cursor = snapshot.segment(i).cursor(term);
        for (; cursor.valid(); cursor.next())
            docs.push_back(cursor.doc());
    }
    std::sort(docs.begin(), docs.end());
    return docs;
}

/** The configurations under conformance test. */
std::vector<Config>
conformanceConfigs()
{
    Config sharded = Config::sharedLocked(2, 2);
    sharded.lock_shards = 4;
    Config immediate = Config::sequential();
    immediate.en_bloc = false;
    return {Config::sequential(),
            immediate,
            Config::sharedLocked(2, 2),
            sharded,
            Config::replicatedJoin(2, 3, 2),
            Config::replicatedNoJoin(2, 3)};
}

class BackendConformance : public ::testing::TestWithParam<std::size_t>
{
  protected:
    Config config() const { return conformanceConfigs()[GetParam()]; }
};

TEST_P(BackendConformance, SealsToSameContentAsReference)
{
    const auto docs = corpusBlocks();

    // Reference: the sequential backend.
    auto reference = makeBackend(Config::sequential());
    for (DocId doc = 0; doc < docs.size(); ++doc)
        reference->addBlock(block(doc, docs[doc]));
    IndexSnapshot expected = reference->sealed();

    // Backend under test: blocks spread round-robin over its lanes,
    // one writer thread per lane (replicated backends require the
    // lane/thread ownership the generator guarantees; shared ones
    // exercise their locking).
    Config cfg = config();
    auto backend = makeBackend(cfg);
    EXPECT_STRNE(backend->name(), "");
    const std::size_t lanes = backend->laneCount();
    ASSERT_GE(lanes, 1u);

    std::vector<std::thread> writers;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        writers.emplace_back([&, lane] {
            for (DocId doc = lane; doc < docs.size(); doc += lanes)
                backend->addBlock(block(doc, docs[doc]),
                                  static_cast<unsigned>(lane));
        });
    }
    for (std::thread &writer : writers)
        writer.join();

    double join_seconds = -1.0;
    IndexSnapshot snapshot = backend->sealed(&join_seconds);
    EXPECT_GE(join_seconds, 0.0);

    // Segment shape per organization.
    if (cfg.impl == Implementation::ReplicatedNoJoin)
        EXPECT_EQ(snapshot.segmentCount(), cfg.replicaCount());
    else
        EXPECT_TRUE(snapshot.unified());

    // Identical content, term by term.
    std::size_t expected_terms = expected.termCount();
    std::size_t checked = 0;
    expected.forEachTerm(
        [&](const std::string &term, PostingCursor cursor) {
            EXPECT_EQ(allPostings(snapshot, term), cursor.toDocSet())
                << "term '" << term << "' under "
                << cfg.describe();
            ++checked;
        });
    EXPECT_EQ(checked, expected_terms);

    // And no terms beyond the expected ones.
    std::uint64_t postings = 0;
    for (std::size_t i = 0; i < snapshot.segmentCount(); ++i)
        postings += snapshot.segment(i).postingCount();
    EXPECT_EQ(postings, expected.postingCount());
}

TEST_P(BackendConformance, ReleaseEmptiesTheBackend)
{
    auto backend = makeBackend(config());
    backend->addBlock(block(0, {"a", "b"}));
    IndexSnapshot first = backend->sealed();
    EXPECT_FALSE(first.empty());
    IndexSnapshot second = backend->sealed();
    EXPECT_TRUE(second.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, BackendConformance,
    ::testing::Range<std::size_t>(0, conformanceConfigs().size()));

/**
 * Acceptance-level property: the same synthetic corpus built through
 * the Engine under every organization answers every query shape
 * identically.
 */
TEST(BackendEquivalence, IdenticalQueryResultsAcrossOrganizations)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(42)).generateInMemory();

    Config sharded = Config::sharedLocked(3, 2);
    sharded.lock_shards = 8;
    std::vector<Config> configs = {
        Config::sequential(), Config::sharedLocked(3, 0),
        Config::sharedLocked(3, 2), sharded,
        Config::replicatedJoin(3, 2, 2),
        Config::replicatedNoJoin(3, 2)};

    const char *queries[] = {"ba", "be OR bi", "ba AND be",
                             "ba AND NOT be", "NOT ba",
                             "(ba OR be) AND (bi OR bo)",
                             "missingterm", "NOT missingterm"};

    std::vector<std::vector<DocSet>> answers;
    std::size_t doc_count = 0;
    for (const Config &cfg : configs) {
        Engine::Result result =
            Engine::open(*fs, "/").config(cfg).build();
        doc_count = result.docs.docCount();
        MultiSearcher searcher(result.snapshot, doc_count);
        std::vector<DocSet> rows;
        for (const char *text : queries)
            rows.push_back(searcher.run(Query::parse(text), 2));
        answers.push_back(std::move(rows));
    }

    for (std::size_t c = 1; c < answers.size(); ++c)
        for (std::size_t q = 0; q < answers[c].size(); ++q)
            EXPECT_EQ(answers[c][q], answers[0][q])
                << configs[c].describe() << " disagrees on '"
                << queries[q] << "'";
    EXPECT_GT(doc_count, 0u);
}

} // namespace
} // namespace dsearch
