/**
 * @file
 * Unit and concurrency tests for the shared and sharded indices
 * (index/shared_index.hh).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "index/shared_index.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** Reference index built sequentially from the same blocks. */
InvertedIndex
reference(const std::vector<TermBlock> &blocks)
{
    InvertedIndex index;
    for (const TermBlock &b : blocks)
        index.addBlock(b);
    index.sortPostings();
    return index;
}

std::vector<TermBlock>
makeBlocks(std::size_t n)
{
    std::vector<TermBlock> blocks;
    for (DocId doc = 0; doc < n; ++doc) {
        std::vector<std::string> terms;
        for (int t = 0; t < 8; ++t)
            terms.push_back("w" + std::to_string((doc * 31 + t * 7)
                                                 % 200));
        std::sort(terms.begin(), terms.end());
        terms.erase(std::unique(terms.begin(), terms.end()),
                    terms.end());
        blocks.push_back(block(doc, std::move(terms)));
    }
    return blocks;
}

TEST(SharedIndex, SingleThreadBehavesLikePlainIndex)
{
    auto blocks = makeBlocks(50);
    SharedIndex shared;
    for (const TermBlock &b : blocks)
        shared.addBlock(b);
    EXPECT_EQ(shared.termCount(), reference(blocks).termCount());
    InvertedIndex out = shared.release();
    out.sortPostings();
    EXPECT_TRUE(sameContents(out, reference(blocks)));
}

TEST(SharedIndex, ConcurrentBlocksMatchSequential)
{
    auto blocks = makeBlocks(800);
    SharedIndex shared;
    const int writers = 4;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&blocks, &shared, w] {
            for (std::size_t i = w; i < blocks.size(); i += writers)
                shared.addBlock(blocks[i]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    InvertedIndex out = shared.release();
    out.sortPostings();
    EXPECT_TRUE(sameContents(out, reference(blocks)));
}

TEST(SharedIndex, ConcurrentOccurrences)
{
    SharedIndex shared;
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&shared, w] {
            for (int i = 0; i < 500; ++i)
                shared.addOccurrence("t" + std::to_string(i % 40),
                                     static_cast<DocId>(w));
        });
    }
    for (std::thread &t : threads)
        t.join();
    // 40 terms x 4 docs; duplicates eliminated by the linear scan.
    EXPECT_EQ(shared.termCount(), 40u);
    EXPECT_EQ(shared.postingCount(), 160u);
}

TEST(ShardedIndex, RoundsUpToPowerOfTwo)
{
    EXPECT_EQ(ShardedIndex(1).shardCount(), 1u);
    EXPECT_EQ(ShardedIndex(3).shardCount(), 4u);
    EXPECT_EQ(ShardedIndex(8).shardCount(), 8u);
    EXPECT_EQ(ShardedIndex(9).shardCount(), 16u);
}

TEST(ShardedIndex, JoinMatchesSequential)
{
    auto blocks = makeBlocks(300);
    ShardedIndex sharded(8);
    for (const TermBlock &b : blocks)
        sharded.addBlock(b);

    EXPECT_EQ(sharded.termCount(), reference(blocks).termCount());
    EXPECT_EQ(sharded.postingCount(),
              reference(blocks).postingCount());

    InvertedIndex joined;
    sharded.joinInto(joined);
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, reference(blocks)));
}

TEST(ShardedIndex, ConcurrentWritersMatchSequential)
{
    auto blocks = makeBlocks(600);
    ShardedIndex sharded(16);
    const int writers = 4;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&blocks, &sharded, w] {
            for (std::size_t i = w; i < blocks.size(); i += writers)
                sharded.addBlock(blocks[i]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    InvertedIndex joined;
    sharded.joinInto(joined);
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, reference(blocks)));
}

TEST(ShardedIndex, SingleShardDegenerate)
{
    auto blocks = makeBlocks(40);
    ShardedIndex sharded(1);
    for (const TermBlock &b : blocks)
        sharded.addBlock(b);
    InvertedIndex joined;
    sharded.joinInto(joined);
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, reference(blocks)));
}

} // namespace
} // namespace dsearch
