/**
 * @file
 * Tests for the Engine facade (core/engine.hh): fluent configuration,
 * snapshot shape per organization, and the serialize -> snapshot ->
 * cursor round-trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "fs/memory_fs.hh"
#include "index/serialize.hh"
#include "search/multi_searcher.hh"
#include "search/searcher.hh"

namespace dsearch {
namespace {

TEST(Engine, DefaultBuildIsSequentialUnified)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "alpha beta");
    fs.addFile("/b.txt", "beta gamma");

    Engine::Result result = Engine::open(fs, "/").build();
    EXPECT_EQ(result.config.impl, Implementation::Sequential);
    EXPECT_TRUE(result.snapshot.unified());
    EXPECT_EQ(result.docs.docCount(), 2u);
    EXPECT_EQ(result.snapshot.termCount(), 3u);
    EXPECT_EQ(result.snapshot.cursor("beta").toDocSet(),
              (std::vector<DocId>{0, 1}));
    EXPECT_GT(result.times.total, 0.0);
    EXPECT_EQ(result.extraction.files, 2u);
}

TEST(Engine, FluentKnobsReachTheConfig)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "one two");

    Engine engine = Engine::open(fs, "/")
                        .organization(Implementation::SharedLocked)
                        .threads(3, 2)
                        .lockShards(4)
                        .queueCapacity(64)
                        .enBloc(true)
                        .distribution(DistributionKind::SizeBalanced);
    EXPECT_EQ(engine.currentConfig().impl,
              Implementation::SharedLocked);
    EXPECT_EQ(engine.currentConfig().extractors, 3u);
    EXPECT_EQ(engine.currentConfig().updaters, 2u);
    EXPECT_EQ(engine.currentConfig().lock_shards, 4u);
    EXPECT_EQ(engine.currentConfig().queue_capacity, 64u);
    EXPECT_EQ(engine.currentConfig().distribution,
              DistributionKind::SizeBalanced);

    Engine::Result result = engine.build();
    EXPECT_TRUE(result.snapshot.unified());
    EXPECT_EQ(result.snapshot.termCount(), 2u);
}

TEST(Engine, ReplicatedJoinDefaultsToOneJoiner)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "one");
    Engine::Result result =
        Engine::open(fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(2, 2) // z omitted
            .build();
    EXPECT_EQ(result.config.joiners, 1u);
    EXPECT_TRUE(result.snapshot.unified());
}

TEST(Engine, NoJoinKeepsOneSegmentPerReplica)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(5)).generateInMemory();
    Engine::Result result =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(2, 3)
            .build();
    EXPECT_EQ(result.snapshot.segmentCount(), 3u);
    MultiSearcher searcher(result.snapshot, result.docs.docCount());
    EXPECT_FALSE(searcher.run(Query::parse("ba")).empty());
}

TEST(Engine, RebuildIsIndependent)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(8)).generateInMemory();
    Engine engine = Engine::open(*fs, "/")
                        .organization(Implementation::ReplicatedJoin)
                        .threads(2, 2, 1);
    Engine::Result first = engine.build();
    Engine::Result second = engine.build();
    EXPECT_EQ(first.snapshot.termCount(),
              second.snapshot.termCount());
    EXPECT_EQ(first.snapshot.postingCount(),
              second.snapshot.postingCount());
}

TEST(Engine, SerializeSnapshotCursorRoundTrip)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(21)).generateInMemory();
    Engine::Result built =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(3, 2, 1)
            .build();

    std::stringstream stream;
    ASSERT_TRUE(saveSnapshot(built.snapshot, built.docs, stream));

    IndexSnapshot loaded;
    DocTable docs;
    ASSERT_TRUE(loadSnapshot(loaded, docs, stream));

    // Same shape...
    ASSERT_EQ(docs.docCount(), built.docs.docCount());
    ASSERT_EQ(loaded.termCount(), built.snapshot.termCount());
    ASSERT_EQ(loaded.postingCount(), built.snapshot.postingCount());

    // ...and cursor-identical content for every term.
    std::size_t checked = 0;
    built.snapshot.forEachTerm(
        [&](const std::string &term, PostingCursor original) {
            PostingCursor reloaded = loaded.cursor(term);
            EXPECT_EQ(reloaded.toDocSet(), original.toDocSet())
                << "term '" << term << "'";
            ++checked;
        });
    EXPECT_EQ(checked, built.snapshot.termCount());

    // Queries over the reloaded snapshot agree too.
    Searcher before(built.snapshot, built.docs.docCount());
    Searcher after(loaded, docs.docCount());
    for (const char *text : {"ba", "be OR bi", "NOT ba"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(before.run(q), after.run(q)) << text;
    }
}

TEST(EngineDeath, SaveSnapshotRejectsMultiSegment)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(5)).generateInMemory();
    Engine::Result result =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(2, 2)
            .build();
    std::stringstream stream;
    EXPECT_DEATH(saveSnapshot(result.snapshot, result.docs, stream),
                 "multi-segment");
}

} // namespace
} // namespace dsearch
