/**
 * @file
 * Unit and behaviour tests for the pipeline simulator
 * (sim/pipeline_sim.hh).
 *
 * These check mechanisms (determinism, conservation, qualitative
 * orderings); the quantitative reproduction of the paper's tables is
 * the benchmark harnesses' job and recorded in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "sim/pipeline_sim.hh"
#include "util/stats.hh"

namespace dsearch {
namespace {

/** Small workload: the paper corpus scaled down 50x. */
const WorkloadModel &
smallWorkload()
{
    static WorkloadModel model =
        WorkloadModel::fromCorpusSpec(CorpusSpec::paperScaled(0.02));
    return model;
}

TEST(WorkloadModel, DerivedCountsConsistent)
{
    const WorkloadModel &w = smallWorkload();
    EXPECT_EQ(w.fileCount(), w.files().size());
    EXPECT_GT(w.totalBytes(), 0u);
    EXPECT_GT(w.totalTokens(), 0u);
    EXPECT_GT(w.totalTerms(), 0u);
    // Dedup can only shrink.
    EXPECT_LT(w.totalTerms(), w.totalTokens());
    std::uint64_t bytes = 0;
    for (const FileModel &f : w.files())
        bytes += f.bytes;
    EXPECT_EQ(bytes, w.totalBytes());
}

TEST(WorkloadModel, TermsSaturateForLargeFiles)
{
    const WorkloadModel &w = smallWorkload();
    const CorpusSpec spec = CorpusSpec::paperScaled(0.02);
    for (const FileModel &f : w.files())
        EXPECT_LE(f.terms, spec.vocabulary_size);
}

TEST(WorkloadModel, CoarsenPreservesTotals)
{
    WorkloadModel w = smallWorkload();
    std::uint64_t files = w.fileCount();
    std::uint64_t bytes = w.totalBytes();
    std::uint64_t tokens = w.totalTokens();
    std::uint64_t terms = w.totalTerms();
    std::size_t entries_before = w.files().size();

    w.coarsen(4);
    EXPECT_LT(w.files().size(), entries_before);
    EXPECT_EQ(w.totalBytes(), bytes);
    EXPECT_EQ(w.totalTokens(), tokens);
    EXPECT_EQ(w.totalTerms(), terms);

    std::uint64_t count = 0;
    for (const FileModel &f : w.files())
        count += f.count;
    EXPECT_EQ(count, files);
}

TEST(WorkloadModel, CoarsenFactorOneIsNoOp)
{
    WorkloadModel w = smallWorkload();
    std::size_t entries = w.files().size();
    w.coarsen(1);
    EXPECT_EQ(w.files().size(), entries);
}

TEST(PipelineSim, SequentialDeterministic)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    SimResult a = sim.run(Config::sequential());
    SimResult b = sim.run(Config::sequential());
    EXPECT_DOUBLE_EQ(a.total_sec, b.total_sec);
    EXPECT_GT(a.total_sec, 0.0);
}

TEST(PipelineSim, ParallelDeterministic)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    Config cfg = Config::sharedLocked(3, 1);
    SimResult a = sim.run(cfg);
    SimResult b = sim.run(cfg);
    EXPECT_DOUBLE_EQ(a.total_sec, b.total_sec);
    EXPECT_EQ(a.events, b.events);
    EXPECT_GT(a.events, 0u);
}

TEST(PipelineSim, ParallelBeatsSequential)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    double seq = sim.run(Config::sequential()).total_sec;
    double par = sim.run(Config::sharedLocked(3, 1)).total_sec;
    EXPECT_LT(par, seq);
    EXPECT_GT(speedup(seq, par), 1.5);
}

TEST(PipelineSim, StageTimesAreConsistent)
{
    PipelineSim sim(PlatformSpec::octCore2010(), smallWorkload());
    SimResult r = sim.run(Config::replicatedJoin(4, 2, 1));
    EXPECT_GT(r.stages.read_and_extract, 0.0);
    EXPECT_GE(r.stages.index_update, 0.0);
    EXPECT_GE(r.stages.join, 0.0);
    EXPECT_GE(r.total_sec, r.stages.read_and_extract);
    EXPECT_NEAR(r.stages.total, r.total_sec, 1e-9);
}

TEST(PipelineSim, MeasureStagesMatchesTable1Shape)
{
    PipelineSim sim(PlatformSpec::quadCore2010(),
                    WorkloadModel::fromCorpusSpec(
                        CorpusSpec::paperScaled(0.05)));
    StageTimes t = sim.measureStages();
    // Qualitative Table 1 shape: reading dominates extraction;
    // filename generation is small; index update is a fraction of
    // reading.
    EXPECT_GT(t.read_files, t.filename_generation);
    EXPECT_GT(t.read_and_extract, t.read_files);
    EXPECT_GT(t.index_update, 0.0);
    EXPECT_LT(t.index_update, t.read_files);
}

TEST(PipelineSim, MoreExtractorsReduceTimeUpToAPoint)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    double x1 = sim.run(Config::sharedLocked(1, 1)).total_sec;
    double x3 = sim.run(Config::sharedLocked(3, 1)).total_sec;
    EXPECT_LT(x3, x1);
}

TEST(PipelineSim, TooManyExtractorsThrashTheDisk)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    double x3 = sim.run(Config::replicatedNoJoin(3, 1)).total_sec;
    double x12 = sim.run(Config::replicatedNoJoin(12, 1)).total_sec;
    EXPECT_GT(x12, x3);
}

TEST(PipelineSim, Impl3NotSlowerThanImpl1OnOctCore)
{
    // The paper's 8-core headline: replicated private indices beat
    // the single locked index.
    PipelineSim sim(PlatformSpec::octCore2010(), smallWorkload());
    double impl1 = sim.run(Config::sharedLocked(6, 2)).total_sec;
    double impl3 = sim.run(Config::replicatedNoJoin(6, 2)).total_sec;
    EXPECT_LT(impl3, impl1);
}

TEST(PipelineSim, Impl2PaysForTheJoin)
{
    PipelineSim sim(PlatformSpec::octCore2010(), smallWorkload());
    double impl2 =
        sim.run(Config::replicatedJoin(6, 2, 1)).total_sec;
    double impl3 = sim.run(Config::replicatedNoJoin(6, 2)).total_sec;
    EXPECT_GT(impl2, impl3);
}

TEST(PipelineSim, ImmediateModeSlowerThanEnBloc)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    Config en_bloc = Config::sharedLocked(3, 1);
    Config immediate = en_bloc;
    immediate.en_bloc = false;
    EXPECT_GT(sim.run(immediate).total_sec,
              sim.run(en_bloc).total_sec);
}

TEST(PipelineSim, UtilizationAccountingPlausible)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    SimResult r = sim.run(Config::sharedLocked(3, 1));
    EXPECT_GT(r.disk_busy_sec, 0.0);
    EXPECT_GT(r.cpu_busy_sec, 0.0);
    // Busy time cannot exceed capacity x wall time.
    EXPECT_LE(r.disk_busy_sec, r.total_sec * 8 + 1e-9);
    EXPECT_LE(r.cpu_busy_sec, r.total_sec * 4 + 1e-9);
}

TEST(PipelineSim, CoarseningBarelyChangesResults)
{
    WorkloadModel fine = smallWorkload();
    WorkloadModel coarse = smallWorkload();
    coarse.coarsen(4);
    PipelineSim sim_fine(PlatformSpec::octCore2010(), fine);
    PipelineSim sim_coarse(PlatformSpec::octCore2010(), coarse);
    Config cfg = Config::replicatedNoJoin(4, 2);
    double a = sim_fine.run(cfg).total_sec;
    double b = sim_coarse.run(cfg).total_sec;
    EXPECT_NEAR(a, b, a * 0.15) << "coarsening distorted the result";
}

TEST(PipelineSim, InterleavedSequentialSlowerThanScanPasses)
{
    // The paper's anomaly: the sequential program exceeds the sum of
    // its dedicated passes on disk-backed platforms.
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    StageTimes passes = sim.measureStages();
    double seq = sim.run(Config::sequential()).total_sec;
    double pass_sum = passes.filename_generation
                      + passes.read_and_extract + passes.index_update;
    EXPECT_GT(seq, pass_sum * 1.2);
}

TEST(PipelineSim, TinyQueueCapacityAddsBackPressure)
{
    PipelineSim sim(PlatformSpec::manyCore2010(), smallWorkload());
    Config roomy = Config::sharedLocked(6, 2);
    roomy.queue_capacity = 512;
    Config cramped = Config::sharedLocked(6, 2);
    cramped.queue_capacity = 1;
    // A 1-slot buffer can only stall extractors more, never less.
    EXPECT_GE(sim.run(cramped).total_sec,
              sim.run(roomy).total_sec * 0.999);
}

TEST(PipelineSim, ImmediateModeWithUpdatersSimulates)
{
    PipelineSim sim(PlatformSpec::octCore2010(), smallWorkload());
    Config cfg = Config::sharedLocked(3, 2);
    cfg.en_bloc = false;
    SimResult r = sim.run(cfg);
    EXPECT_GT(r.total_sec, 0.0);
    // Immediate mode must cost more than en-bloc on the same tuple.
    EXPECT_GT(r.total_sec,
              sim.run(Config::sharedLocked(3, 2)).total_sec);
}

TEST(PipelineSim, ReplicatedJoinMoreJoinersNeverSlower)
{
    PipelineSim sim(PlatformSpec::manyCore2010(), smallWorkload());
    Config z1 = Config::replicatedJoin(8, 4, 1);
    Config z4 = Config::replicatedJoin(8, 4, 4);
    // The analytic reduction is parallel: more lanes cannot hurt.
    EXPECT_LE(sim.run(z4).stages.join,
              sim.run(z1).stages.join + 1e-9);
}

TEST(PipelineSim, LockWaitOnlyUnderSharedImplementation)
{
    PipelineSim sim(PlatformSpec::octCore2010(), smallWorkload());
    SimResult shared = sim.run(Config::sharedLocked(6, 2));
    SimResult replicated = sim.run(Config::replicatedNoJoin(6, 2));
    EXPECT_GT(shared.lock_wait_sec, 0.0);
    EXPECT_EQ(replicated.lock_wait_sec, 0.0);
}

TEST(PipelineSimDeath, PipelinedStage1Rejected)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    Config cfg = Config::sharedLocked(2, 1);
    cfg.pipelined_stage1 = true;
    EXPECT_EXIT(sim.run(cfg), ::testing::ExitedWithCode(1),
                "not modelled");
}

TEST(PipelineSimDeath, NonRoundRobinRejected)
{
    PipelineSim sim(PlatformSpec::quadCore2010(), smallWorkload());
    Config cfg = Config::sharedLocked(2, 1);
    cfg.distribution = DistributionKind::WorkStealing;
    EXPECT_EXIT(sim.run(cfg), ::testing::ExitedWithCode(1),
                "round-robin");
}

} // namespace
} // namespace dsearch
