/**
 * @file
 * Unit tests for the platform registry (sim/platform.hh).
 */

#include <gtest/gtest.h>

#include "sim/platform.hh"

namespace dsearch {
namespace {

TEST(Platform, PaperPlatformCoreCounts)
{
    EXPECT_EQ(PlatformSpec::quadCore2010().cores, 4u);
    EXPECT_EQ(PlatformSpec::octCore2010().cores, 8u);
    EXPECT_EQ(PlatformSpec::manyCore2010().cores, 32u);
}

TEST(Platform, NamesIdentifyMachines)
{
    EXPECT_NE(PlatformSpec::quadCore2010().name.find("4-core"),
              std::string::npos);
    EXPECT_NE(PlatformSpec::octCore2010().name.find("8-core"),
              std::string::npos);
    EXPECT_NE(PlatformSpec::manyCore2010().name.find("32-core"),
              std::string::npos);
}

TEST(Platform, AllCostsPositive)
{
    for (const PlatformSpec &p :
         {PlatformSpec::quadCore2010(), PlatformSpec::octCore2010(),
          PlatformSpec::manyCore2010(), PlatformSpec::host(2)}) {
        EXPECT_GT(p.cores, 0u) << p.name;
        EXPECT_GT(p.scan_us_per_mb, 0.0) << p.name;
        EXPECT_GT(p.insert_us_per_term, 0.0) << p.name;
        EXPECT_GE(p.lock_us, 0.0) << p.name;
        EXPECT_GT(p.disk.bandwidth_mbps, 0.0) << p.name;
        EXPECT_GT(p.disk.channels, 0u) << p.name;
        EXPECT_GE(p.disk.cached_fraction, 0.0) << p.name;
        EXPECT_LE(p.disk.cached_fraction, 1.0) << p.name;
        EXPECT_GE(p.cold_insert_factor, 1.0) << p.name;
        EXPECT_GE(p.dup_scan_factor, 1.0) << p.name;
    }
}

TEST(Platform, InterleavedSeekExceedsScanSeek)
{
    // The whole sequential-slowness story requires this ordering.
    for (const PlatformSpec &p :
         {PlatformSpec::quadCore2010(), PlatformSpec::octCore2010(),
          PlatformSpec::manyCore2010()}) {
        EXPECT_GT(p.disk.seek_interleaved_ms, p.disk.seek_scan_ms)
            << p.name;
        EXPECT_GT(p.disk.seek_scan_ms, p.disk.seek_floor_ms)
            << p.name;
    }
}

TEST(Platform, OnlyManyCoreSeesPageCache)
{
    EXPECT_EQ(PlatformSpec::quadCore2010().disk.cached_fraction, 0.0);
    EXPECT_EQ(PlatformSpec::octCore2010().disk.cached_fraction, 0.0);
    EXPECT_GT(PlatformSpec::manyCore2010().disk.cached_fraction, 0.0);
}

TEST(Platform, HostDetectsOrOverridesCores)
{
    EXPECT_EQ(PlatformSpec::host(6).cores, 6u);
    EXPECT_GE(PlatformSpec::host(0).cores, 1u);
}

TEST(Platform, HostDiskIsMemoryLike)
{
    PlatformSpec host = PlatformSpec::host(2);
    EXPECT_EQ(host.disk.seek_scan_ms, 0.0);
    EXPECT_GT(host.disk.bandwidth_mbps, 1000.0);
}

} // namespace
} // namespace dsearch
