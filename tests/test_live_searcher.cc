/**
 * @file
 * Tests for base+delta+tombstone query evaluation
 * (search/live_searcher.hh): exact equivalence with Searcher and
 * RankedSearcher in the degenerate (base-only) case, delta
 * visibility, tombstone masking — including the NOT-resurrection
 * case compaction makes possible — and ranked scoring across
 * segments.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "search/live_searcher.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

IndexSnapshot
seal(std::vector<TermBlock> blocks)
{
    InvertedIndex index;
    for (TermBlock &b : blocks)
        index.addBlock(std::move(b));
    return IndexSnapshot::seal(std::move(index));
}

/**
 * Fixture corpus (6 docs, equal size so penalties cancel):
 *   base  0: apple pie        delta 4: apple fresh
 *         1: apple                  5: pie fresh
 *         2: pie
 *         3: cherry
 */
class LiveSearcherTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int d = 0; d < 6; ++d)
            _docs.add("/f" + std::to_string(d), 500);
        _base = seal({block(0, {"apple", "pie"}),
                      block(1, {"apple"}), block(2, {"pie"}),
                      block(3, {"cherry"})});
        _delta = seal({block(4, {"apple", "fresh"}),
                       block(5, {"pie", "fresh"})});
    }

    LiveSearcher
    makeLive(DocSet tombstones = {}) const
    {
        std::vector<DeltaSegment> deltas;
        deltas.push_back(DeltaSegment{_delta, 4, 6});
        return LiveSearcher(_base, 4, std::move(deltas),
                            std::move(tombstones), _docs);
    }

    DocTable _docs;
    IndexSnapshot _base;
    IndexSnapshot _delta;
};

TEST_F(LiveSearcherTest, DegenerateCaseMatchesSearcherExactly)
{
    // Base only, no deltas, no tombstones: every query must return
    // byte-identical results to the unified engines.
    DocTable docs;
    for (int d = 0; d < 4; ++d)
        docs.add("/f" + std::to_string(d), 500);
    LiveSearcher live(_base, 4, {}, {}, docs);
    Searcher plain(_base, docs.docCount());
    RankedSearcher ranked(_base, docs);

    for (const char *text :
         {"apple", "pie", "apple AND pie", "apple OR cherry",
          "apple AND NOT pie", "NOT apple", "missing",
          "NOT missing"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(live.run(q), plain.run(q)) << text;

        auto live_hits = live.topK(q, 10);
        auto ranked_hits = ranked.topK(q, 10);
        ASSERT_EQ(live_hits.size(), ranked_hits.size()) << text;
        for (std::size_t i = 0; i < live_hits.size(); ++i) {
            EXPECT_EQ(live_hits[i].doc, ranked_hits[i].doc) << text;
            EXPECT_DOUBLE_EQ(live_hits[i].score, ranked_hits[i].score)
                << text;
        }
    }
}

TEST_F(LiveSearcherTest, DeltaDocsAreVisible)
{
    LiveSearcher live = makeLive();
    EXPECT_EQ(live.aliveCount(), 6u);
    EXPECT_EQ(live.segmentCount(), 2u);

    EXPECT_EQ(live.run(Query::parse("apple")), (DocSet{0, 1, 4}));
    EXPECT_EQ(live.run(Query::parse("fresh")), (DocSet{4, 5}));
    // AND across segments: no document spans segments, so matches
    // must come from postings within one segment.
    EXPECT_EQ(live.run(Query::parse("apple AND fresh")), (DocSet{4}));
    // NOT spans the whole alive universe, both segments.
    EXPECT_EQ(live.run(Query::parse("NOT apple")), (DocSet{2, 3, 5}));
}

TEST_F(LiveSearcherTest, TombstonesMaskEverywhere)
{
    // Kill one base doc and one delta doc.
    LiveSearcher live = makeLive({1, 5});
    EXPECT_EQ(live.aliveCount(), 4u);

    EXPECT_EQ(live.run(Query::parse("apple")), (DocSet{0, 4}));
    EXPECT_EQ(live.run(Query::parse("fresh")), (DocSet{4}));
    // The NOT-resurrection case: dead docs must not reappear as
    // non-matching "empty" documents.
    EXPECT_EQ(live.run(Query::parse("NOT apple")), (DocSet{2, 3}));
    EXPECT_EQ(live.run(Query::parse("NOT missing")),
              (DocSet{0, 2, 3, 4}));

    for (const auto &hit : live.topK(Query::parse("apple OR pie"), 10))
        EXPECT_TRUE(hit.doc != 1 && hit.doc != 5);
}

TEST_F(LiveSearcherTest, SupersededDocumentServesNewVersionOnly)
{
    // Re-index doc 1 ("apple") as doc 6 ("banana"): the live chain
    // tombstones 1 and adds a second delta owning [6, 7).
    DocTable docs;
    for (int d = 0; d < 6; ++d)
        docs.add("/f" + std::to_string(d), 500);
    docs.add("/f1", 500); // new version of /f1 -> doc 6

    std::vector<DeltaSegment> deltas;
    deltas.push_back(DeltaSegment{_delta, 4, 6});
    deltas.push_back(
        DeltaSegment{seal({block(6, {"banana"})}), 6, 7});
    LiveSearcher live(_base, 4, std::move(deltas), {1}, docs);

    EXPECT_EQ(live.aliveCount(), 6u);
    EXPECT_EQ(live.run(Query::parse("apple")), (DocSet{0, 4}));
    EXPECT_EQ(live.run(Query::parse("banana")), (DocSet{6}));
    EXPECT_EQ(live.run(Query::parse("NOT banana")),
              (DocSet{0, 2, 3, 4, 5}));
}

TEST_F(LiveSearcherTest, RankedAcrossSegments)
{
    LiveSearcher live = makeLive();
    // df(apple) = 3 across segments (docs 0, 1, 4); df(fresh) = 2.
    // All sizes equal, so 'fresh' docs outrank 'apple'-only docs on
    // "apple OR fresh" only when they carry both.
    auto hits = live.topK(Query::parse("apple OR fresh"), 10);
    ASSERT_EQ(hits.size(), 4u); // docs 0, 1, 4, 5
    EXPECT_EQ(hits[0].doc, 4u); // apple + fresh: both weights
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_TRUE(hits[i - 1].score > hits[i].score
                    || (hits[i - 1].score == hits[i].score
                        && hits[i - 1].doc < hits[i].doc));
}

TEST_F(LiveSearcherTest, RankedMatchSetEqualsBoolean)
{
    LiveSearcher live = makeLive({2});
    for (const char *text :
         {"apple", "fresh OR cherry", "pie AND NOT fresh",
          "NOT apple"}) {
        Query q = Query::parse(text);
        DocSet from_ranked;
        for (const auto &hit : live.topK(q, 100))
            from_ranked.push_back(hit.doc);
        std::sort(from_ranked.begin(), from_ranked.end());
        EXPECT_EQ(from_ranked, live.run(q)) << text;
    }
}

TEST_F(LiveSearcherTest, EmptyDeltaRangeServesEmptyDocs)
{
    // A delta whose files were unreadable still owns its DocId range;
    // those docs match only NOT queries (empty documents), exactly
    // like the base build's unreadable files.
    DocTable docs;
    for (int d = 0; d < 5; ++d)
        docs.add("/f" + std::to_string(d), 500);
    std::vector<DeltaSegment> deltas;
    deltas.push_back(DeltaSegment{seal({}), 4, 5});
    LiveSearcher live(_base, 4, std::move(deltas), {}, docs);

    EXPECT_EQ(live.aliveCount(), 5u);
    EXPECT_EQ(live.run(Query::parse("apple")), (DocSet{0, 1}));
    EXPECT_EQ(live.run(Query::parse("NOT apple")), (DocSet{2, 3, 4}));
}

TEST_F(LiveSearcherTest, InvalidQueryReturnsNothing)
{
    LiveSearcher live = makeLive();
    Query bad = Query::parse("AND AND");
    EXPECT_FALSE(bad.valid());
    EXPECT_TRUE(live.run(bad).empty());
    EXPECT_TRUE(live.topK(bad, 5).empty());
}

} // namespace
} // namespace dsearch
