/**
 * @file
 * Failure-injection tests: the generator must survive unreadable
 * files (fs/flaky_fs.hh) in every organization, skipping exactly the
 * same deterministic set.
 */

#include <gtest/gtest.h>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "fs/flaky_fs.hh"
#include "index/index_join.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

class FlakyFsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _inner = CorpusGenerator(CorpusSpec::tiny(321))
                     .generateInMemory();
        setLogLevel(LogLevel::Silent); // expected warnings
    }

    void TearDown() override { setLogLevel(LogLevel::Info); }

    std::unique_ptr<MemoryFs> _inner;
};

TEST_F(FlakyFsTest, MetadataPassesThrough)
{
    FlakyFs flaky(*_inner, 1.0); // every read fails
    EXPECT_EQ(flaky.list("/corpus").size(),
              _inner->list("/corpus").size());
    FileList files = generateFilenames(flaky, "/");
    EXPECT_EQ(files.size(), _inner->fileCount());
}

TEST_F(FlakyFsTest, ZeroProbabilityNeverFails)
{
    FlakyFs flaky(*_inner, 0.0);
    FileList files = generateFilenames(flaky, "/");
    std::string content;
    for (const FileEntry &file : files)
        ASSERT_TRUE(flaky.readFile(file.path, content));
    EXPECT_EQ(flaky.failedReads(), 0u);
}

TEST_F(FlakyFsTest, FullProbabilityAlwaysFails)
{
    FlakyFs flaky(*_inner, 1.0);
    std::string content;
    FileList files = generateFilenames(flaky, "/");
    for (const FileEntry &file : files)
        ASSERT_FALSE(flaky.readFile(file.path, content));
    EXPECT_EQ(flaky.failedReads(), files.size());
}

TEST_F(FlakyFsTest, FailureSetIsDeterministic)
{
    FlakyFs a(*_inner, 0.3, 9);
    FlakyFs b(*_inner, 0.3, 9);
    FileList files = generateFilenames(*_inner, "/");
    for (const FileEntry &file : files)
        EXPECT_EQ(a.failsOn(file.path), b.failsOn(file.path));
}

TEST_F(FlakyFsTest, FailureRateApproximatelyHonored)
{
    FlakyFs flaky(*_inner, 0.3, 5);
    FileList files = generateFilenames(*_inner, "/");
    std::size_t failing = 0;
    for (const FileEntry &file : files)
        if (flaky.failsOn(file.path))
            ++failing;
    double rate =
        static_cast<double>(failing) / static_cast<double>(files.size());
    EXPECT_NEAR(rate, 0.3, 0.1);
}

TEST_F(FlakyFsTest, SequentialBuildSkipsAndSurvives)
{
    FlakyFs flaky(*_inner, 0.25, 7);
    IndexGenerator generator(flaky, "/", Config::sequential());
    BuildResult result = generator.build();

    FileList files = generateFilenames(*_inner, "/");
    std::size_t expected_failures = 0;
    for (const FileEntry &file : files)
        if (flaky.failsOn(file.path))
            ++expected_failures;

    EXPECT_EQ(result.extraction.read_errors, expected_failures);
    EXPECT_EQ(result.extraction.files,
              files.size() - expected_failures);
    EXPECT_GT(result.primary().termCount(), 0u);
}

/**
 * Property: with deterministic failures, every organization builds
 * the same (reduced) index.
 */
class FlakyEquivalence : public ::testing::TestWithParam<double>
{
};

TEST_P(FlakyEquivalence, AllImplementationsAgreeUnderFailures)
{
    setLogLevel(LogLevel::Silent);
    auto inner = CorpusGenerator(CorpusSpec::tiny(55))
                     .generateInMemory();
    FlakyFs flaky(*inner, GetParam(), 13);

    IndexGenerator sequential(flaky, "/", Config::sequential());
    InvertedIndex reference =
        std::move(sequential.build().indices.front());
    reference.sortPostings();

    for (Config cfg :
         {Config::sharedLocked(3, 1), Config::replicatedJoin(3, 2, 1),
          Config::replicatedNoJoin(4, 0)}) {
        IndexGenerator generator(flaky, "/", cfg);
        BuildResult result = generator.build();
        InvertedIndex merged =
            joinSequential(std::move(result.indices));
        merged.sortPostings();
        EXPECT_TRUE(sameContents(merged, reference))
            << cfg.describe() << " diverged at failure rate "
            << GetParam();
    }
    setLogLevel(LogLevel::Info);
}

INSTANTIATE_TEST_SUITE_P(FailureRates, FlakyEquivalence,
                         ::testing::Values(0.05, 0.25, 0.75));

} // namespace
} // namespace dsearch
