/**
 * @file
 * Failure-injection tests: the generator must survive unreadable
 * files (fs/flaky_fs.hh) in every organization, skipping exactly the
 * same deterministic set; and transient failures (fail-then-succeed)
 * must be absorbed by the extractor's bounded retry without skipping
 * anything.
 */

#include <gtest/gtest.h>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "fs/flaky_fs.hh"
#include "index/index_join.hh"
#include "text/term_extractor.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

class FlakyFsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _inner = CorpusGenerator(CorpusSpec::tiny(321))
                     .generateInMemory();
        setLogLevel(LogLevel::Silent); // expected warnings
    }

    void TearDown() override { setLogLevel(LogLevel::Info); }

    std::unique_ptr<MemoryFs> _inner;
};

TEST_F(FlakyFsTest, MetadataPassesThrough)
{
    FlakyFs flaky(*_inner, 1.0); // every read fails
    EXPECT_EQ(flaky.list("/corpus").size(),
              _inner->list("/corpus").size());
    FileList files = generateFilenames(flaky, "/");
    EXPECT_EQ(files.size(), _inner->fileCount());
}

TEST_F(FlakyFsTest, ZeroProbabilityNeverFails)
{
    FlakyFs flaky(*_inner, 0.0);
    FileList files = generateFilenames(flaky, "/");
    std::string content;
    for (const FileEntry &file : files)
        ASSERT_TRUE(flaky.readFile(file.path, content));
    EXPECT_EQ(flaky.failedReads(), 0u);
}

TEST_F(FlakyFsTest, FullProbabilityAlwaysFails)
{
    FlakyFs flaky(*_inner, 1.0);
    std::string content;
    FileList files = generateFilenames(flaky, "/");
    for (const FileEntry &file : files)
        ASSERT_FALSE(flaky.readFile(file.path, content));
    EXPECT_EQ(flaky.failedReads(), files.size());
}

TEST_F(FlakyFsTest, FailureSetIsDeterministic)
{
    FlakyFs a(*_inner, 0.3, 9);
    FlakyFs b(*_inner, 0.3, 9);
    FileList files = generateFilenames(*_inner, "/");
    for (const FileEntry &file : files)
        EXPECT_EQ(a.failsOn(file.path), b.failsOn(file.path));
}

TEST_F(FlakyFsTest, FailureRateApproximatelyHonored)
{
    FlakyFs flaky(*_inner, 0.3, 5);
    FileList files = generateFilenames(*_inner, "/");
    std::size_t failing = 0;
    for (const FileEntry &file : files)
        if (flaky.failsOn(file.path))
            ++failing;
    double rate =
        static_cast<double>(failing) / static_cast<double>(files.size());
    EXPECT_NEAR(rate, 0.3, 0.1);
}

TEST_F(FlakyFsTest, SequentialBuildSkipsAndSurvives)
{
    FlakyFs flaky(*_inner, 0.25, 7);
    IndexGenerator generator(flaky, "/", Config::sequential());
    BuildResult result = generator.build();

    FileList files = generateFilenames(*_inner, "/");
    std::size_t expected_failures = 0;
    for (const FileEntry &file : files)
        if (flaky.failsOn(file.path))
            ++expected_failures;

    EXPECT_EQ(result.extraction.read_errors, expected_failures);
    EXPECT_EQ(result.extraction.files,
              files.size() - expected_failures);
    EXPECT_GT(result.primary().termCount(), 0u);
}

TEST_F(FlakyFsTest, TransientFailuresSucceedAfterBudget)
{
    FlakyFs flaky(*_inner, 1.0); // every file is in the failing set
    flaky.setTransientFailures(2);

    FileList files = generateFilenames(*_inner, "/");
    ASSERT_FALSE(files.empty());
    const std::string &path = files.front().path;
    std::string content;
    EXPECT_FALSE(flaky.readFile(path, content)); // attempt 1 fails
    EXPECT_FALSE(flaky.readFile(path, content)); // attempt 2 fails
    EXPECT_TRUE(flaky.readFile(path, content));  // budget burned
    EXPECT_FALSE(content.empty());
    EXPECT_TRUE(flaky.readFile(path, content)); // and stays readable
    EXPECT_EQ(flaky.failedReads(), 2u);

    // Budgets are per path: a different file starts failing afresh.
    std::string other;
    EXPECT_FALSE(flaky.readFile(files.back().path, other));
}

TEST_F(FlakyFsTest, TransientModeResetsWhenReconfigured)
{
    FlakyFs flaky(*_inner, 1.0);
    flaky.setTransientFailures(1);
    FileList files = generateFilenames(*_inner, "/");
    std::string content;
    EXPECT_FALSE(flaky.readFile(files.front().path, content));
    EXPECT_TRUE(flaky.readFile(files.front().path, content));

    flaky.setTransientFailures(1); // counts reset: fails once again
    EXPECT_FALSE(flaky.readFile(files.front().path, content));
    EXPECT_TRUE(flaky.readFile(files.front().path, content));

    flaky.setTransientFailures(0); // back to permanent
    EXPECT_FALSE(flaky.readFile(files.front().path, content));
    EXPECT_FALSE(flaky.readFile(files.front().path, content));
}

TEST_F(FlakyFsTest, ExtractorRetryRecoversTransientFailures)
{
    FlakyFs flaky(*_inner, 1.0);
    flaky.setTransientFailures(2); // within the default retry budget

    TermExtractor extractor(flaky);
    FileList files = generateFilenames(flaky, "/");
    TermBlock block;
    for (const FileEntry &file : files) {
        EXPECT_TRUE(extractor.extract(file, block)) << file.path;
        EXPECT_FALSE(block.empty()) << file.path;
    }

    const ExtractorStats &stats = extractor.stats();
    EXPECT_EQ(stats.files, files.size());
    EXPECT_EQ(stats.read_errors, 0u); // nothing was skipped
    EXPECT_EQ(stats.read_retries, 2u * files.size());
}

TEST_F(FlakyFsTest, ExtractorRetryIsBoundedOnPermanentFailure)
{
    FlakyFs flaky(*_inner, 1.0); // permanent: retrying cannot help

    TermExtractor extractor(flaky);
    FileList files = generateFilenames(flaky, "/");
    TermBlock block;
    ASSERT_FALSE(extractor.extract(files.front(), block));

    const ExtractorStats &stats = extractor.stats();
    EXPECT_EQ(stats.read_errors, 1u);
    EXPECT_EQ(stats.read_retries, 2u); // default bound, then skip
    // 1 initial + 2 retries reached the filesystem.
    EXPECT_EQ(flaky.failedReads(), 3u);
}

TEST_F(FlakyFsTest, RetryDisabledSkipsImmediately)
{
    FlakyFs flaky(*_inner, 1.0);
    flaky.setTransientFailures(1); // would recover on first retry

    TermExtractor extractor(flaky);
    extractor.setReadRetries(0);
    FileList files = generateFilenames(flaky, "/");
    TermBlock block;
    EXPECT_FALSE(extractor.extract(files.front(), block));
    EXPECT_EQ(extractor.stats().read_retries, 0u);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
}

TEST_F(FlakyFsTest, BuildUnderTransientFailuresLosesNothing)
{
    // A full sequential build over a filesystem where *every* read
    // fails once: the retry path must deliver the same index a
    // healthy filesystem produces.
    IndexGenerator healthy_gen(*_inner, "/", Config::sequential());
    BuildResult healthy = healthy_gen.build();
    InvertedIndex reference = std::move(healthy.indices.front());
    reference.sortPostings();

    FlakyFs flaky(*_inner, 1.0);
    flaky.setTransientFailures(1);
    IndexGenerator generator(flaky, "/", Config::sequential());
    BuildResult result = generator.build();

    EXPECT_EQ(result.extraction.read_errors, 0u);
    EXPECT_EQ(result.extraction.files, _inner->fileCount());
    EXPECT_GT(result.extraction.read_retries, 0u);
    InvertedIndex built = std::move(result.indices.front());
    built.sortPostings();
    EXPECT_TRUE(sameContents(built, reference));
}

/**
 * Property: with deterministic failures, every organization builds
 * the same (reduced) index.
 */
class FlakyEquivalence : public ::testing::TestWithParam<double>
{
};

TEST_P(FlakyEquivalence, AllImplementationsAgreeUnderFailures)
{
    setLogLevel(LogLevel::Silent);
    auto inner = CorpusGenerator(CorpusSpec::tiny(55))
                     .generateInMemory();
    FlakyFs flaky(*inner, GetParam(), 13);

    IndexGenerator sequential(flaky, "/", Config::sequential());
    InvertedIndex reference =
        std::move(sequential.build().indices.front());
    reference.sortPostings();

    for (Config cfg :
         {Config::sharedLocked(3, 1), Config::replicatedJoin(3, 2, 1),
          Config::replicatedNoJoin(4, 0)}) {
        IndexGenerator generator(flaky, "/", cfg);
        BuildResult result = generator.build();
        InvertedIndex merged =
            joinSequential(std::move(result.indices));
        merged.sortPostings();
        EXPECT_TRUE(sameContents(merged, reference))
            << cfg.describe() << " diverged at failure rate "
            << GetParam();
    }
    setLogLevel(LogLevel::Info);
}

INSTANTIATE_TEST_SUITE_P(FailureRates, FlakyEquivalence,
                         ::testing::Values(0.05, 0.25, 0.75));

} // namespace
} // namespace dsearch
