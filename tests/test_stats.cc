/**
 * @file
 * Unit tests for statistics helpers (util/stats.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace dsearch {
namespace {

TEST(RunningStat, EmptyState)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
    EXPECT_EQ(stat.stddev(), 0.0);
    EXPECT_EQ(stat.min(), 0.0);
    EXPECT_EQ(stat.max(), 0.0);
    EXPECT_EQ(stat.sum(), 0.0);
}

TEST(RunningStat, SingleObservation)
{
    RunningStat stat;
    stat.push(5.0);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_EQ(stat.mean(), 5.0);
    EXPECT_EQ(stat.variance(), 0.0);
    EXPECT_EQ(stat.min(), 5.0);
    EXPECT_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance)
{
    // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
    // sample var 32/7.
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.push(x);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stat.min(), 2.0);
    EXPECT_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, NumericallyStableOnOffsetData)
{
    // Large offset with tiny variance: naive sum-of-squares breaks.
    RunningStat stat;
    for (int i = 0; i < 1000; ++i)
        stat.push(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
    EXPECT_NEAR(stat.mean(), 1e9, 1e-3);
    EXPECT_NEAR(stat.variance(), 0.25, 1e-3);
}

TEST(RunningStat, ClearResets)
{
    RunningStat stat;
    stat.push(1.0);
    stat.push(2.0);
    stat.clear();
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
}

TEST(Summarize, MatchesRunningStat)
{
    Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
}

TEST(Summarize, EmptySample)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(QuantileSorted, InterpolatesBetweenRanks)
{
    std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 1.0), 5.0);
    // Type-7 interpolation: rank 0.25 * 4 = 1 exactly -> 2.0;
    // 0.9 * 4 = 3.6 -> 4.0 + 0.6 * (5.0 - 4.0).
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.25), 2.0);
    EXPECT_NEAR(quantileSorted(sorted, 0.9), 4.6, 1e-12);
}

TEST(QuantileSorted, DegenerateInputs)
{
    EXPECT_EQ(quantileSorted({}, 0.5), 0.0);
    std::vector<double> one{7.0};
    EXPECT_DOUBLE_EQ(quantileSorted(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantileSorted(one, 0.99), 7.0);
    // Out-of-range quantiles clamp instead of indexing out of range.
    std::vector<double> two{1.0, 2.0};
    EXPECT_DOUBLE_EQ(quantileSorted(two, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(quantileSorted(two, 1.5), 2.0);
}

TEST(SummarizeLatencies, TailPercentilesOrdered)
{
    // 1..100 ms: p50 = 50.5, p95 = 95.05, p99 = 99.01 under linear
    // interpolation; the digest sorts internally (feed it shuffled).
    std::vector<double> sample;
    for (int i = 100; i >= 1; --i)
        sample.push_back(static_cast<double>(i) * 1e-3);
    LatencySummary digest = summarizeLatencies(sample);
    EXPECT_EQ(digest.count, 100u);
    EXPECT_NEAR(digest.mean, 50.5e-3, 1e-12);
    EXPECT_NEAR(digest.p50, 50.5e-3, 1e-9);
    EXPECT_NEAR(digest.p95, 95.05e-3, 1e-9);
    EXPECT_NEAR(digest.p99, 99.01e-3, 1e-9);
    EXPECT_DOUBLE_EQ(digest.max, 100e-3);
    EXPECT_LE(digest.p50, digest.p95);
    EXPECT_LE(digest.p95, digest.p99);
    EXPECT_LE(digest.p99, digest.max);
}

TEST(SummarizeLatencies, EmptySample)
{
    LatencySummary digest = summarizeLatencies({});
    EXPECT_EQ(digest.count, 0u);
    EXPECT_EQ(digest.p99, 0.0);
}

TEST(Speedup, PaperValues)
{
    // Table 2: sequential 220 s, Implementation 1 at 46.7 s -> 4.71.
    EXPECT_NEAR(speedup(220.0, 46.7), 4.71, 0.005);
    // Table 4: 90 s / 25.7 s -> 3.50.
    EXPECT_NEAR(speedup(90.0, 25.7), 3.50, 0.005);
}

TEST(Speedup, DegenerateInputs)
{
    EXPECT_EQ(speedup(10.0, 0.0), 0.0);
    EXPECT_EQ(speedup(10.0, -1.0), 0.0);
}

TEST(PercentDelta, PaperVarianceColumn)
{
    // Table 3: Implementation 3 speed-up 2.12 vs Implementation 1's
    // 1.76 -> +16.5% hmm: (2.12-1.76)/1.76 = +20.5%? The paper's
    // +16.5% uses unrounded speed-ups; we verify the formula itself.
    EXPECT_NEAR(percentDelta(2.12, 1.76), 20.45, 0.01);
    EXPECT_NEAR(percentDelta(1.76, 1.76), 0.0, 1e-12);
    EXPECT_LT(percentDelta(1.5, 2.0), 0.0);
}

TEST(PercentDelta, DegenerateReference)
{
    EXPECT_EQ(percentDelta(1.0, 0.0), 0.0);
    EXPECT_EQ(percentDelta(1.0, -5.0), 0.0);
}

TEST(LatencyHistogram, EmptyState)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0.0);
    EXPECT_EQ(hist.min(), 0.0);
    EXPECT_EQ(hist.max(), 0.0);
    EXPECT_EQ(hist.quantile(0.5), 0.0);
    EXPECT_EQ(hist.summarize().count, 0u);
}

TEST(LatencyHistogram, ExactFieldsAreExact)
{
    LatencyHistogram hist;
    hist.record(0.001);
    hist.record(0.004);
    hist.record(0.010);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.015);
    EXPECT_DOUBLE_EQ(hist.min(), 0.001);
    EXPECT_DOUBLE_EQ(hist.max(), 0.010);
    EXPECT_DOUBLE_EQ(hist.summarize().mean, 0.005);
}

TEST(LatencyHistogram, QuantileWithinBucketError)
{
    // Log-uniform sample across the serving-latency range; every
    // quantile must land within one bucket ratio (10^(1/16) ~ 1.155)
    // of the exact estimate.
    Rng rng(42);
    std::vector<double> sample;
    LatencyHistogram hist;
    for (int i = 0; i < 5000; ++i) {
        double x = 1e-5 * std::pow(10.0, rng.nextDouble() * 4.0);
        sample.push_back(x);
        hist.record(x);
    }
    std::sort(sample.begin(), sample.end());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        double exact = quantileSorted(sample, q);
        double approx = hist.quantile(q);
        EXPECT_LE(approx, exact * 1.16) << "q=" << q;
        EXPECT_GE(approx, exact / 1.16) << "q=" << q;
    }
}

TEST(LatencyHistogram, QuantileBoundsAreExactExtremes)
{
    LatencyHistogram hist;
    hist.record(0.0021);
    hist.record(0.033);
    hist.record(0.0007);
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0007);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 0.033);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    Rng rng(7);
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram combined;
    for (int i = 0; i < 1000; ++i) {
        double x = 1e-4 * std::pow(10.0, rng.nextDouble() * 3.0);
        if (i % 2 == 0)
            a.record(x);
        else
            b.record(x);
        combined.record(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    // Sums accumulate in a different order on the two sides, so
    // exact double equality is not guaranteed — only tightness.
    EXPECT_NEAR(a.sum(), combined.sum(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
    for (double q : {0.1, 0.5, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << q;
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram hist;
    hist.record(0.5);
    LatencyHistogram empty;
    hist.merge(empty);
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.5);

    empty.merge(hist);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.max(), 0.5);
}

TEST(LatencyHistogram, UnderflowAndOverflowClampToObserved)
{
    LatencyHistogram hist;
    hist.record(0.0);    // underflow bucket
    hist.record(1e9);    // far past the last finite bucket
    EXPECT_EQ(hist.count(), 2u);
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e9);
    EXPECT_DOUBLE_EQ(hist.summarize().max, 1e9);
}

TEST(LatencyHistogram, ClearResets)
{
    LatencyHistogram hist;
    hist.record(0.25);
    hist.clear();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.quantile(0.5), 0.0);
    EXPECT_EQ(hist.sum(), 0.0);
}

} // namespace
} // namespace dsearch
