/**
 * @file
 * Unit tests for Stage 2 term extraction (text/term_extractor.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fs/memory_fs.hh"
#include "text/term_extractor.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

FileEntry
entry(DocId doc, const std::string &path, std::uint64_t size)
{
    FileEntry e;
    e.doc = doc;
    e.path = path;
    e.size = size;
    return e;
}

TEST(TermExtractor, ExtractsUniqueTerms)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "the cat and the hat and the cat");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(7, "/f.txt", 31), block));
    EXPECT_EQ(block.doc, 7u);
    std::vector<std::string> terms = block.terms;
    std::sort(terms.begin(), terms.end());
    std::vector<std::string> expected = {"and", "cat", "hat", "the"};
    EXPECT_EQ(terms, expected);
}

TEST(TermExtractor, StatsCountTokensAndUniques)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "a a a b b c");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/f.txt", 11), block));
    EXPECT_EQ(extractor.stats().files, 1u);
    EXPECT_EQ(extractor.stats().tokens, 6u);
    EXPECT_EQ(extractor.stats().unique_terms, 3u);
    EXPECT_EQ(extractor.stats().bytes, 11u);
    EXPECT_EQ(extractor.stats().read_errors, 0u);
}

TEST(TermExtractor, BlockReusedAcrossFiles)
{
    MemoryFs fs;
    fs.addFile("/1.txt", "alpha beta");
    fs.addFile("/2.txt", "gamma");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/1.txt", 10), block));
    EXPECT_EQ(block.terms.size(), 2u);
    ASSERT_TRUE(extractor.extract(entry(1, "/2.txt", 5), block));
    EXPECT_EQ(block.doc, 1u);
    ASSERT_EQ(block.terms.size(), 1u);
    EXPECT_EQ(block.terms[0], "gamma");
}

TEST(TermExtractor, DedupIsPerFileNotGlobal)
{
    MemoryFs fs;
    fs.addFile("/1.txt", "shared unique1");
    fs.addFile("/2.txt", "shared unique2");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/1.txt", 14), block));
    EXPECT_EQ(block.terms.size(), 2u);
    // "shared" must appear again for the second file.
    ASSERT_TRUE(extractor.extract(entry(1, "/2.txt", 14), block));
    EXPECT_EQ(block.terms.size(), 2u);
    EXPECT_NE(std::find(block.terms.begin(), block.terms.end(),
                        "shared"),
              block.terms.end());
}

TEST(TermExtractor, MissingFileSkippedWithWarning)
{
    MemoryFs fs;
    TermExtractor extractor(fs);
    TermBlock block;

    int warnings = 0;
    LogSink old = setLogSink(
        [&warnings](LogLevel level, const std::string &) {
            if (level == LogLevel::Warn)
                ++warnings;
        });
    EXPECT_FALSE(extractor.extract(entry(0, "/gone.txt", 10), block));
    setLogSink(std::move(old));

    EXPECT_EQ(warnings, 1);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
    EXPECT_EQ(extractor.stats().files, 0u);
}

TEST(TermExtractor, EmptyFileYieldsEmptyBlock)
{
    MemoryFs fs;
    fs.addFile("/empty.txt", "");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(3, "/empty.txt", 0), block));
    EXPECT_EQ(block.doc, 3u);
    EXPECT_TRUE(block.terms.empty());
}

TEST(TermExtractor, OccurrenceModeKeepsDuplicatesInOrder)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "b a b c a");
    TermExtractor extractor(fs);
    std::vector<std::string> occurrences;
    ASSERT_TRUE(extractor.extractOccurrences(entry(0, "/f.txt", 9),
                                             occurrences));
    std::vector<std::string> expected = {"b", "a", "b", "c", "a"};
    EXPECT_EQ(occurrences, expected);
}

TEST(TermExtractor, OccurrenceModeMissingFile)
{
    MemoryFs fs;
    TermExtractor extractor(fs);
    std::vector<std::string> occurrences;
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(extractor.extractOccurrences(
        entry(0, "/gone.txt", 1), occurrences));
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
}

TEST(TermExtractor, StatsAddCombines)
{
    ExtractorStats a, b;
    a.files = 2;
    a.bytes = 100;
    a.tokens = 50;
    a.unique_terms = 20;
    a.read_errors = 1;
    b.files = 3;
    b.bytes = 200;
    b.tokens = 70;
    b.unique_terms = 30;
    b.read_errors = 0;
    a.add(b);
    EXPECT_EQ(a.files, 5u);
    EXPECT_EQ(a.bytes, 300u);
    EXPECT_EQ(a.tokens, 120u);
    EXPECT_EQ(a.unique_terms, 50u);
    EXPECT_EQ(a.read_errors, 1u);
}

TEST(TermExtractor, TokenizerOptionsRespected)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "a bb ccc");
    TokenizerOptions opts;
    opts.min_length = 2;
    TermExtractor extractor(fs, opts);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/f.txt", 8), block));
    EXPECT_EQ(block.terms.size(), 2u);
}

} // namespace
} // namespace dsearch
