/**
 * @file
 * Unit tests for Stage 2 term extraction (text/term_extractor.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "fs/memory_fs.hh"
#include "pipeline/blocking_queue.hh"
#include "text/term_extractor.hh"
#include "util/fnv_hash.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

FileEntry
entry(DocId doc, const std::string &path, std::uint64_t size)
{
    FileEntry e;
    e.doc = doc;
    e.path = path;
    e.size = size;
    return e;
}

TEST(TermExtractor, ExtractsUniqueTerms)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "the cat and the hat and the cat");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(7, "/f.txt", 31), block));
    EXPECT_EQ(block.doc, 7u);
    std::vector<std::string> terms = block.termStrings();
    std::sort(terms.begin(), terms.end());
    std::vector<std::string> expected = {"and", "cat", "hat", "the"};
    EXPECT_EQ(terms, expected);
}

TEST(TermExtractor, StatsCountTokensAndUniques)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "a a a b b c");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/f.txt", 11), block));
    EXPECT_EQ(extractor.stats().files, 1u);
    EXPECT_EQ(extractor.stats().tokens, 6u);
    EXPECT_EQ(extractor.stats().unique_terms, 3u);
    EXPECT_EQ(extractor.stats().bytes, 11u);
    EXPECT_EQ(extractor.stats().read_errors, 0u);
}

TEST(TermExtractor, BlockReusedAcrossFiles)
{
    MemoryFs fs;
    fs.addFile("/1.txt", "alpha beta");
    fs.addFile("/2.txt", "gamma");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/1.txt", 10), block));
    EXPECT_EQ(block.termCount(), 2u);
    ASSERT_TRUE(extractor.extract(entry(1, "/2.txt", 5), block));
    EXPECT_EQ(block.doc, 1u);
    ASSERT_EQ(block.termCount(), 1u);
    EXPECT_EQ(block.term(0), "gamma");
}

TEST(TermExtractor, DedupIsPerFileNotGlobal)
{
    MemoryFs fs;
    fs.addFile("/1.txt", "shared unique1");
    fs.addFile("/2.txt", "shared unique2");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/1.txt", 14), block));
    EXPECT_EQ(block.termCount(), 2u);
    // "shared" must appear again for the second file.
    ASSERT_TRUE(extractor.extract(entry(1, "/2.txt", 14), block));
    EXPECT_EQ(block.termCount(), 2u);
    std::vector<std::string> terms = block.termStrings();
    EXPECT_NE(std::find(terms.begin(), terms.end(), "shared"),
              terms.end());
}

TEST(TermExtractor, MissingFileSkippedWithWarning)
{
    MemoryFs fs;
    TermExtractor extractor(fs);
    TermBlock block;

    int warnings = 0;
    LogSink old = setLogSink(
        [&warnings](LogLevel level, const std::string &) {
            if (level == LogLevel::Warn)
                ++warnings;
        });
    EXPECT_FALSE(extractor.extract(entry(0, "/gone.txt", 10), block));
    setLogSink(std::move(old));

    EXPECT_EQ(warnings, 1);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
    EXPECT_EQ(extractor.stats().files, 0u);
}

TEST(TermExtractor, EmptyFileYieldsEmptyBlock)
{
    MemoryFs fs;
    fs.addFile("/empty.txt", "");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(3, "/empty.txt", 0), block));
    EXPECT_EQ(block.doc, 3u);
    EXPECT_TRUE(block.empty());
}

TEST(TermExtractor, OccurrenceModeKeepsDuplicatesInOrder)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "b a b c a");
    TermExtractor extractor(fs);
    std::vector<std::string> occurrences;
    ASSERT_TRUE(extractor.extractOccurrences(entry(0, "/f.txt", 9),
                                             occurrences));
    std::vector<std::string> expected = {"b", "a", "b", "c", "a"};
    EXPECT_EQ(occurrences, expected);
}

TEST(TermExtractor, OccurrenceModeMissingFile)
{
    MemoryFs fs;
    TermExtractor extractor(fs);
    std::vector<std::string> occurrences;
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(extractor.extractOccurrences(
        entry(0, "/gone.txt", 1), occurrences));
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
}

TEST(TermExtractor, StatsAddCombines)
{
    ExtractorStats a, b;
    a.files = 2;
    a.bytes = 100;
    a.tokens = 50;
    a.unique_terms = 20;
    a.read_errors = 1;
    b.files = 3;
    b.bytes = 200;
    b.tokens = 70;
    b.unique_terms = 30;
    b.read_errors = 0;
    a.add(b);
    EXPECT_EQ(a.files, 5u);
    EXPECT_EQ(a.bytes, 300u);
    EXPECT_EQ(a.tokens, 120u);
    EXPECT_EQ(a.unique_terms, 50u);
    EXPECT_EQ(a.read_errors, 1u);
}

TEST(TermBlock, ArenaLayoutIsFlatAndHashed)
{
    TermBlock block;
    block.doc = 4;
    block.addTerm("alpha");
    block.addTerm("beta", fnv1a_64("beta"));
    block.addTerm("c");

    ASSERT_EQ(block.termCount(), 3u);
    EXPECT_EQ(block.term(0), "alpha");
    EXPECT_EQ(block.term(1), "beta");
    EXPECT_EQ(block.term(2), "c");
    // Terms live back to back in one buffer.
    EXPECT_EQ(block.arena, "alphabetac");
    // Every span carries the term's FNV-1a hash.
    for (std::size_t i = 0; i < block.termCount(); ++i)
        EXPECT_EQ(block.hashAt(i), fnv1a_64(block.term(i)));

    block.clear();
    EXPECT_TRUE(block.empty());
    EXPECT_TRUE(block.arena.empty());
}

TEST(TermBlock, ExtractedSpansCarryCorrectHashes)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "zeta epsilon zeta OMEGA");
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/f.txt", 23), block));
    ASSERT_EQ(block.termCount(), 3u);
    for (std::size_t i = 0; i < block.termCount(); ++i)
        EXPECT_EQ(block.hashAt(i), fnv1a_64(block.term(i)));
}

TEST(TermBlock, RoundTripsThroughBlockingQueue)
{
    MemoryFs fs;
    fs.addFile("/a.txt", "cat dog cat bird");
    fs.addFile("/b.txt", "fish");
    TermExtractor extractor(fs);

    BlockingQueue<TermBlock> queue(4);
    std::thread producer([&] {
        TermBlock block;
        ASSERT_TRUE(extractor.extract(entry(1, "/a.txt", 16), block));
        queue.push(std::move(block));
        ASSERT_TRUE(extractor.extract(entry(2, "/b.txt", 4), block));
        queue.push(std::move(block));
        queue.close();
    });

    TermBlock out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.doc, 1u);
    std::vector<std::string> terms = out.termStrings();
    std::sort(terms.begin(), terms.end());
    EXPECT_EQ(terms, (std::vector<std::string>{"bird", "cat", "dog"}));
    for (std::size_t i = 0; i < out.termCount(); ++i)
        EXPECT_EQ(out.hashAt(i), fnv1a_64(out.term(i)));

    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.doc, 2u);
    ASSERT_EQ(out.termCount(), 1u);
    EXPECT_EQ(out.term(0), "fish");

    EXPECT_FALSE(queue.pop(out));
    producer.join();
}

TEST(TermExtractor, DedupSurvivesTableGrowth)
{
    // More unique terms than the initial dedup table can hold without
    // growing, with every term repeated, so growth happens mid-file
    // while duplicates keep arriving.
    std::string text;
    for (int i = 0; i < 2000; ++i) {
        std::string word = "w" + std::to_string(i);
        text += word + " " + word + " ";
    }
    MemoryFs fs;
    fs.addFile("/big.txt", text);
    TermExtractor extractor(fs);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(
        entry(0, "/big.txt", text.size()), block));
    EXPECT_EQ(block.termCount(), 2000u);
    EXPECT_EQ(extractor.stats().tokens, 4000u);

    std::vector<std::string> terms = block.termStrings();
    std::sort(terms.begin(), terms.end());
    EXPECT_EQ(std::unique(terms.begin(), terms.end()), terms.end());
}

TEST(TermExtractor, SilencedWarningsSkipMessageConstruction)
{
    // With the level below Warn no sink must be invoked, and errors
    // are still counted.
    MemoryFs fs;
    TermExtractor extractor(fs);
    TermBlock block;
    int sink_calls = 0;
    LogSink old = setLogSink(
        [&sink_calls](LogLevel, const std::string &) { ++sink_calls; });
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(extractor.extract(entry(0, "/gone.txt", 1), block));
    setLogLevel(LogLevel::Info);
    setLogSink(std::move(old));
    EXPECT_EQ(sink_calls, 0);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
}

TEST(TermExtractor, TokenizerOptionsRespected)
{
    MemoryFs fs;
    fs.addFile("/f.txt", "a bb ccc");
    TokenizerOptions opts;
    opts.min_length = 2;
    TermExtractor extractor(fs, opts);
    TermBlock block;
    ASSERT_TRUE(extractor.extract(entry(0, "/f.txt", 8), block));
    EXPECT_EQ(block.termCount(), 2u);
}

} // namespace
} // namespace dsearch
