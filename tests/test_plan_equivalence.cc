/**
 * @file
 * Randomized plan-vs-legacy equivalence fuzz across every serving
 * tier. The legacy recursive evaluator (evalQueryNode) and a literal
 * replication of the pre-planner ranked loops serve as independent
 * oracles; the planner/operator path must reproduce their answers
 * exactly — boolean sets element-for-element and ranked scores
 * bit-for-bit — on:
 *
 *  - a sealed unified snapshot (Searcher / RankedSearcher),
 *  - a live base+delta generation with tombstones (LiveSearcher,
 *    whose planner port evaluates full-range universes and
 *    anti-joins tombstones once),
 *  - a document-partitioned sharded tier (Broker over N in {1, 2, 4}
 *    shards vs the unsharded reference, bit-identical ranked merge).
 *
 * Also the NOT-only cross-tier regression (satellite 2): `NOT a` and
 * `NOT NOT a` answer identically through Searcher, LiveSearcher and
 * Broker, with the planner as the single source of truth for the
 * universe.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "fs/memory_fs.hh"
#include "search/live_searcher.hh"
#include "search/plan.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "shard/broker.hh"
#include "shard/shard_planner.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

std::string
word(std::size_t v)
{
    return "w" + std::to_string(v);
}

/** Random query text over a fixed vocabulary, NOTs included. */
std::string
randomQuery(Rng &rng, std::size_t vocab, int depth)
{
    if (depth <= 0 || rng.bernoulli(0.35))
        return word(rng.uniform(0, vocab)); // index == vocab: absent
    switch (rng.uniform(0, 3)) {
      case 0:
        return "(" + randomQuery(rng, vocab, depth - 1) + " AND "
               + randomQuery(rng, vocab, depth - 1) + ")";
      case 1:
        return "(" + randomQuery(rng, vocab, depth - 1) + " OR "
               + randomQuery(rng, vocab, depth - 1) + ")";
      case 2:
        return "(NOT " + randomQuery(rng, vocab, depth - 1) + ")";
      default: // duplicate-operand shapes stress dedupe
        return "(" + randomQuery(rng, vocab, depth - 1) + " AND "
               + randomQuery(rng, vocab, depth - 1) + " AND "
               + randomQuery(rng, vocab, depth - 1) + ")";
    }
}

IndexSnapshot
randomSnapshot(Rng &rng, DocId first_doc, DocId end_doc,
               std::size_t vocab, double density)
{
    InvertedIndex index;
    for (DocId doc = first_doc; doc < end_doc; ++doc) {
        TermBlock block;
        block.doc = doc;
        bool any = false;
        for (std::size_t v = 0; v < vocab; ++v) {
            if (rng.bernoulli(density / static_cast<double>(v + 1))) {
                block.addTerm(word(v));
                any = true;
            }
        }
        if (any)
            index.addBlock(block);
    }
    return IndexSnapshot::seal(std::move(index));
}

/** The pre-planner ranked loop, replicated literally as an oracle. */
std::vector<ScoredHit>
legacyTopK(const IndexSnapshot &snapshot, const DocTable &docs,
           const DocSet &universe, const Query &query, std::size_t k)
{
    const SegmentReader segment = snapshot.segment(0);
    DocSet matches = evalQueryNode(segment, universe, query.root());
    if (matches.empty() || k == 0)
        return {};
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : positiveTerms(query.root())) {
        const std::size_t df = snapshot.termDocCount(term);
        if (df == 0)
            continue;
        accumulateCursor(matches, snapshot.cursor(term),
                         idfFromCounts(docs.docCount(), df), scores);
    }
    std::vector<ScoredHit> hits;
    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        double penalty = std::log(
            2.0 + static_cast<double>(docs.sizeBytes(matches[i])));
        hits.push_back(ScoredHit{matches[i], scores[i] / penalty});
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

void
expectSameRanking(const std::vector<ScoredHit> &got,
                  const std::vector<ScoredHit> &want,
                  const std::string &text)
{
    ASSERT_EQ(got.size(), want.size()) << text;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].doc, want[i].doc) << text << " @" << i;
        // Bit-identical, not approximately equal: the planner path
        // must accumulate in exactly the legacy order.
        EXPECT_EQ(got[i].score, want[i].score) << text << " @" << i;
    }
}

class PlanEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

// ---------------------------------------------------------------
// Sealed tier: Searcher / RankedSearcher vs the legacy oracles.

TEST_P(PlanEquivalence, SealedBooleanAndRanked)
{
    constexpr std::size_t vocab = 8;
    constexpr DocId docs_n = 400;
    Rng rng(GetParam());
    IndexSnapshot snapshot =
        randomSnapshot(rng, 0, docs_n, vocab, 0.6);
    DocTable docs;
    for (DocId d = 0; d < docs_n; ++d)
        docs.add("/f" + std::to_string(d),
                 100 + rng.uniform(0, 4000));

    Searcher searcher(snapshot, docs_n);
    RankedSearcher ranked(snapshot, docs);
    DocSet universe(docs_n);
    for (DocId d = 0; d < docs_n; ++d)
        universe[d] = d;
    const SegmentReader segment = snapshot.segment(0);

    for (int i = 0; i < 80; ++i) {
        const std::string text = randomQuery(rng, vocab, 3);
        Query query = Query::parse(text);
        ASSERT_TRUE(query.valid()) << text;

        EXPECT_EQ(searcher.run(query),
                  evalQueryNode(segment, universe, query.root()))
            << text;
        // The precompiled-plan entry point answers identically.
        EXPECT_EQ(searcher.run(searcher.compilePlan(query)),
                  searcher.run(query))
            << text;
        expectSameRanking(ranked.topK(query, 10),
                          legacyTopK(snapshot, docs, universe, query,
                                     10),
                          text);
    }
}

// ---------------------------------------------------------------
// Live tier: full-range universes + one tombstone anti-join vs the
// legacy per-segment punched-universe evaluation.

TEST_P(PlanEquivalence, LiveWithTombstones)
{
    constexpr std::size_t vocab = 8;
    constexpr DocId base_docs = 200;
    constexpr DocId total_docs = 300;
    Rng rng(GetParam() * 131 + 7);

    IndexSnapshot base =
        randomSnapshot(rng, 0, base_docs, vocab, 0.6);
    IndexSnapshot delta =
        randomSnapshot(rng, base_docs, total_docs, vocab, 0.6);
    DocTable docs;
    for (DocId d = 0; d < total_docs; ++d)
        docs.add("/f" + std::to_string(d),
                 100 + rng.uniform(0, 4000));
    DocSet tombstones;
    for (DocId d = 0; d < total_docs; ++d)
        if (rng.bernoulli(0.15))
            tombstones.push_back(d);

    std::vector<DeltaSegment> deltas;
    deltas.push_back(DeltaSegment{delta, base_docs, total_docs});
    LiveSearcher live(base, base_docs, deltas, tombstones, docs);

    // Legacy oracle: per-segment owned universe (range minus
    // tombstones), evalQueryNode, concatenate — the pre-planner
    // implementation, replicated here.
    auto punched = [&tombstones](DocId first, DocId end) {
        DocSet out;
        for (DocId d = first; d < end; ++d)
            if (!std::binary_search(tombstones.begin(),
                                    tombstones.end(), d))
                out.push_back(d);
        return out;
    };
    const DocSet base_universe = punched(0, base_docs);
    const DocSet delta_universe = punched(base_docs, total_docs);

    for (int i = 0; i < 80; ++i) {
        const std::string text = randomQuery(rng, vocab, 3);
        Query query = Query::parse(text);
        ASSERT_TRUE(query.valid()) << text;

        DocSet expected = evalQueryNode(base.segment(0),
                                        base_universe, query.root());
        DocSet delta_part = evalQueryNode(
            delta.segment(0), delta_universe, query.root());
        expected.insert(expected.end(), delta_part.begin(),
                        delta_part.end());
        EXPECT_EQ(live.run(query), expected) << text;
        EXPECT_EQ(live.run(live.compilePlan(query)), expected)
            << text;
    }
}

// ---------------------------------------------------------------
// Sharded tier: broker over N shards vs the unsharded reference,
// boolean sets equal and ranked merges bit-identical.

class BrokerPlanEquivalence : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        CorpusGenerator gen(CorpusSpec::tiny());
        _fs = gen.generateInMemory().release();
        _root = gen.spec().root;
        _reference = new Engine::Result(
            Engine::open(*_fs, _root).threads(1).build());
    }

    static void
    TearDownTestSuite()
    {
        delete _reference;
        _reference = nullptr;
        delete _fs;
        _fs = nullptr;
    }

    static MemoryFs *_fs;
    static std::string _root;
    static Engine::Result *_reference;
};

MemoryFs *BrokerPlanEquivalence::_fs = nullptr;
std::string BrokerPlanEquivalence::_root;
Engine::Result *BrokerPlanEquivalence::_reference = nullptr;

/** Random query over the synthetic corpus vocabulary. */
std::string
randomCorpusQuery(Rng &rng, int depth)
{
    static const char *const kTerms[] = {"ba",   "be",   "zu",
                                         "cido", "dula", "missing"};
    if (depth <= 0 || rng.bernoulli(0.35))
        return kTerms[rng.uniform(0, 5)];
    switch (rng.uniform(0, 2)) {
      case 0:
        return "(" + randomCorpusQuery(rng, depth - 1) + " AND "
               + randomCorpusQuery(rng, depth - 1) + ")";
      case 1:
        return "(" + randomCorpusQuery(rng, depth - 1) + " OR "
               + randomCorpusQuery(rng, depth - 1) + ")";
      default:
        return "(NOT " + randomCorpusQuery(rng, depth - 1) + ")";
    }
}

TEST_F(BrokerPlanEquivalence, RandomizedBooleanAndRankedVsUnsharded)
{
    Searcher direct(_reference->snapshot,
                    _reference->docs.docCount());
    RankedSearcher ranked(_reference->snapshot, _reference->docs);

    for (std::size_t n : {1u, 2u, 4u}) {
        ShardPlanOptions plan_opts;
        plan_opts.shards = n;
        Broker broker(ShardPlanner::build(*_fs, _root, plan_opts));
        Rng rng(n * 977 + 5);
        for (int i = 0; i < 25; ++i) {
            const std::string text = randomCorpusQuery(rng, 3);
            Query query = Query::parse(text);
            ASSERT_TRUE(query.valid()) << text;

            BrokerResponse boolean =
                broker.submit(query).get();
            ASSERT_TRUE(boolean.ok) << text;
            EXPECT_FALSE(boolean.partial) << text;
            EXPECT_EQ(boolean.hits, direct.run(query))
                << "shards=" << n << " " << text;

            BrokerResponse top = broker.submitRanked(query, 10).get();
            ASSERT_TRUE(top.ok) << text;
            auto want = ranked.topK(query, 10);
            ASSERT_EQ(top.ranked.size(), want.size())
                << "shards=" << n << " " << text;
            for (std::size_t j = 0; j < want.size(); ++j) {
                EXPECT_EQ(top.ranked[j].doc, want[j].doc)
                    << "shards=" << n << " " << text;
                EXPECT_EQ(top.ranked[j].score, want[j].score)
                    << "shards=" << n << " " << text;
            }
        }
        broker.shutdown();
    }
}

// ---------------------------------------------------------------
// Satellite 2: NOT-only queries cross-tier. `NOT a` and `NOT NOT a`
// must answer identically everywhere — the planner's universe
// handling is the single source of truth.

TEST_F(BrokerPlanEquivalence, NotOnlyQueriesAgreeAcrossTiers)
{
    const std::size_t doc_count = _reference->docs.docCount();
    Searcher direct(_reference->snapshot, doc_count);
    LiveSearcher live(_reference->snapshot,
                      static_cast<DocId>(doc_count), {}, {},
                      _reference->docs);
    ShardPlanOptions plan_opts;
    plan_opts.shards = 3;
    Broker broker(ShardPlanner::build(*_fs, _root, plan_opts));

    for (const char *term : {"ba", "zu", "missing"}) {
        Query pos = Query::parse(term);
        Query neg = Query::parse(std::string("NOT ") + term);
        Query dbl =
            Query::parse(std::string("NOT NOT ") + term);

        const DocSet direct_pos = direct.run(pos);
        const DocSet direct_neg = direct.run(neg);

        // NOT a == universe \ a; NOT NOT a == a, on every tier.
        DocSet complement;
        for (DocId d = 0; d < doc_count; ++d)
            if (!std::binary_search(direct_pos.begin(),
                                    direct_pos.end(), d))
                complement.push_back(d);
        EXPECT_EQ(direct_neg, complement) << term;
        EXPECT_EQ(direct.run(dbl), direct_pos) << term;

        EXPECT_EQ(live.run(neg), direct_neg) << term;
        EXPECT_EQ(live.run(dbl), direct_pos) << term;

        BrokerResponse broker_neg = broker.submit(neg).get();
        BrokerResponse broker_dbl = broker.submit(dbl).get();
        ASSERT_TRUE(broker_neg.ok && broker_dbl.ok) << term;
        EXPECT_EQ(broker_neg.hits, direct_neg) << term;
        EXPECT_EQ(broker_dbl.hits, direct_pos) << term;
    }
    broker.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalence,
                         ::testing::Values(1, 2, 3, 42, 2718));

} // namespace
} // namespace dsearch
