/**
 * @file
 * Tests for crash-safe generational persistence
 * (index/snapshot_store.hh): round-trips, generation advancement and
 * pruning, recovery after a simulated kill at every stage of the save
 * protocol (fault points; see util/fault.hh), corruption fallback,
 * partial-write cleanup, and concurrent save/load (part of the
 * check_tsan_fault suite).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "index/snapshot_store.hh"
#include "search/searcher.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

namespace stdfs = std::filesystem;

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** A tiny corpus whose one marker term identifies the generation. */
void
makeSample(IndexSnapshot &snapshot, DocTable &docs,
           const std::string &marker)
{
    docs = DocTable{};
    docs.add("/a.txt", 100);
    docs.add("/b.txt", 200);
    InvertedIndex index;
    index.addBlock(block(0, {"alpha", marker}));
    index.addBlock(block(1, {"beta", marker}));
    snapshot = IndexSnapshot::seal(std::move(index));
}

/** @return True when the loaded snapshot carries @p marker. */
bool
hasMarker(const IndexSnapshot &snapshot, const DocTable &docs,
          const std::string &marker)
{
    Searcher searcher(snapshot, docs.docCount());
    return !searcher.run(Query::parse(marker)).empty();
}

class SnapshotStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disarmAllFaults();
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        _dir = ::testing::TempDir() + "dsearch_store_"
               + info->name();
        std::error_code ec;
        stdfs::remove_all(_dir, ec); // stale state from a prior run
        setLogLevel(LogLevel::Silent); // recovery warns on purpose
    }

    void
    TearDown() override
    {
        disarmAllFaults();
        setLogLevel(LogLevel::Info);
        std::error_code ec;
        stdfs::remove_all(_dir, ec);
    }

    /** Store options without fsync: these tests need atomicity and
     *  recovery, not durability, and fsync dominates their runtime. */
    static SnapshotStoreOptions
    fast()
    {
        SnapshotStoreOptions options;
        options.sync = false;
        return options;
    }

    std::string _dir;
};

TEST_F(SnapshotStoreTest, SaveLoadRoundTrip)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "genone");

    EXPECT_EQ(store.save(snapshot, docs), 1u);
    EXPECT_EQ(store.newestGeneration(), 1u);

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 1u);
    EXPECT_EQ(loaded_docs.docCount(), 2u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "genone"));
}

TEST_F(SnapshotStoreTest, EmptyStoreLoadsNothing)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 0u);
    EXPECT_EQ(loaded_docs.docCount(), 0u);
    EXPECT_TRUE(store.generations().empty());
}

TEST_F(SnapshotStoreTest, GenerationsAdvanceAndPrune)
{
    SnapshotStoreOptions options = fast();
    options.keep_generations = 2;
    SnapshotStore store(_dir, options);
    IndexSnapshot snapshot;
    DocTable docs;

    for (std::uint64_t gen = 1; gen <= 5; ++gen) {
        makeSample(snapshot, docs, "gen" + std::to_string(gen));
        EXPECT_EQ(store.save(snapshot, docs), gen);
    }

    // Only the two newest survive; the files of the rest are gone.
    EXPECT_EQ(store.generations(),
              (std::vector<std::uint64_t>{4, 5}));
    EXPECT_FALSE(stdfs::exists(store.generationPath(3)));
    EXPECT_TRUE(stdfs::exists(store.generationPath(5)));

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 5u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "gen5"));
}

TEST_F(SnapshotStoreTest, KillMidWriteRecoversPreviousGeneration)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "good");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    makeSample(snapshot, docs, "torn");
    {
        ScopedFault crash("snapshot_store.crash_mid_write");
        EXPECT_EQ(store.save(snapshot, docs), 0u);
        EXPECT_EQ(crash.fires(), 1u);
    }
    // The torn write left a .tmp partial, never a published file.
    EXPECT_EQ(store.newestGeneration(), 1u);

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 1u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "good"));
    EXPECT_FALSE(hasMarker(loaded, loaded_docs, "torn"));
    EXPECT_GE(store.cleanedFiles(), 1u); // the partial was removed

    // The store keeps working after recovery.
    makeSample(snapshot, docs, "after");
    EXPECT_EQ(store.save(snapshot, docs), 2u);
}

TEST_F(SnapshotStoreTest, KillBeforeRenameRecoversPreviousGeneration)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "good");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    makeSample(snapshot, docs, "unpublished");
    {
        ScopedFault crash("snapshot_store.crash_before_rename");
        EXPECT_EQ(store.save(snapshot, docs), 0u);
    }
    // A complete but unrenamed temp file is still not a generation.
    EXPECT_EQ(store.newestGeneration(), 1u);

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 1u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "good"));
    EXPECT_GE(store.cleanedFiles(), 1u);
}

TEST_F(SnapshotStoreTest, KillBeforeManifestStillFindsNewGeneration)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "old");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    makeSample(snapshot, docs, "published");
    {
        ScopedFault crash("snapshot_store.crash_before_manifest");
        // The generation file was renamed into place before the
        // "crash", so the save itself counts.
        EXPECT_EQ(store.save(snapshot, docs), 2u);
    }

    // The manifest still lists only generation 1; the directory scan
    // must surface generation 2 anyway — including to a fresh store
    // instance (a restarted process).
    SnapshotStore reopened(_dir, fast());
    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(reopened.load(loaded, loaded_docs), 2u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "published"));
}

TEST_F(SnapshotStoreTest, CorruptNewestFallsBackToOlder)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "older");
    ASSERT_EQ(store.save(snapshot, docs), 1u);
    makeSample(snapshot, docs, "newer");
    ASSERT_EQ(store.save(snapshot, docs), 2u);

    // Flip one payload byte in the newest generation.
    const std::string victim = store.generationPath(2);
    {
        std::fstream file(victim, std::ios::binary | std::ios::in
                                      | std::ios::out);
        ASSERT_TRUE(file);
        file.seekp(24); // inside the payload, past the header
        char byte = 0;
        file.seekg(24);
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        file.seekp(24);
        file.write(&byte, 1);
    }

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 1u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "older"));
    // The corrupt file was deleted, not left to fail again.
    EXPECT_FALSE(stdfs::exists(victim));
    EXPECT_GE(store.cleanedFiles(), 1u);
    EXPECT_EQ(store.generations(),
              (std::vector<std::uint64_t>{1}));
}

TEST_F(SnapshotStoreTest, AllGenerationsCorruptLoadsNothing)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "doomed");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    // Truncate the only generation to a stub.
    {
        std::ofstream file(store.generationPath(1),
                           std::ios::binary | std::ios::trunc);
        file << "DSIX";
    }

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs), 0u);
    EXPECT_EQ(loaded_docs.docCount(), 0u);
    EXPECT_TRUE(store.generations().empty());
}

TEST_F(SnapshotStoreTest, ManifestLessDirectoryStillLoads)
{
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "scanned");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    stdfs::remove(_dir + "/MANIFEST");

    SnapshotStore reopened(_dir, fast());
    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(reopened.load(loaded, loaded_docs), 1u);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs, "scanned"));
}

TEST_F(SnapshotStoreTest, ConcurrentSaveAndLoad)
{
    // A hot-swap publisher saves new generations while a reader
    // recovers — the store's mutex must serialize them without
    // deadlock or torn reads. Part of the TSan suite.
    SnapshotStore store(_dir, fast());
    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "base");
    ASSERT_EQ(store.save(snapshot, docs), 1u);

    const int rounds = 8;
    std::thread saver([&] {
        IndexSnapshot mine;
        DocTable mine_docs;
        for (int i = 0; i < rounds; ++i) {
            makeSample(mine, mine_docs, "round" + std::to_string(i));
            EXPECT_GT(store.save(mine, mine_docs), 0u);
        }
    });
    std::thread loader([&] {
        IndexSnapshot mine;
        DocTable mine_docs;
        for (int i = 0; i < rounds; ++i)
            EXPECT_GT(store.load(mine, mine_docs), 0u);
    });
    saver.join();
    loader.join();

    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(store.load(loaded, loaded_docs),
              static_cast<std::uint64_t>(rounds) + 1);
}

TEST_F(SnapshotStoreTest, PruneUnderConcurrentLoadFromSecondStore)
{
    // Two store instances on one directory (a live-index compactor
    // and a recovering reader do exactly this): the saver's mutex
    // does not protect the loader, so aggressive pruning
    // (keep_generations = 1) deletes generations under the loader's
    // feet. The loader must treat a vanished file as "pruned, rescan"
    // — land on some newer valid generation — never as corruption
    // (no deletions, no cleaned() growth) and never as total failure.
    SnapshotStoreOptions aggressive = fast();
    aggressive.keep_generations = 1;
    SnapshotStore saver_store(_dir, aggressive);
    SnapshotStore loader_store(_dir, aggressive);

    IndexSnapshot snapshot;
    DocTable docs;
    makeSample(snapshot, docs, "base");
    ASSERT_EQ(saver_store.save(snapshot, docs), 1u);

    const int rounds = 24;
    std::thread saver([&] {
        IndexSnapshot mine;
        DocTable mine_docs;
        for (int i = 0; i < rounds; ++i) {
            makeSample(mine, mine_docs, "round" + std::to_string(i));
            EXPECT_GT(saver_store.save(mine, mine_docs), 0u);
        }
    });
    std::thread loader([&] {
        IndexSnapshot mine;
        DocTable mine_docs;
        for (int i = 0; i < rounds; ++i) {
            std::uint64_t gen = loader_store.load(mine, mine_docs);
            EXPECT_GT(gen, 0u);
        }
    });
    saver.join();
    loader.join();

    // Every hiccup along the way was a race, not corruption: no
    // generation file may have been deleted as "corrupt". (The
    // loader may legitimately reap the saver's in-flight .tmp —
    // counted in cleanedFiles(), retried by the saver — so only the
    // corruption counter must stay zero.)
    EXPECT_EQ(loader_store.corruptFiles(), 0u);
    IndexSnapshot loaded;
    DocTable loaded_docs;
    EXPECT_EQ(loader_store.load(loaded, loaded_docs),
              static_cast<std::uint64_t>(rounds) + 1);
    EXPECT_TRUE(hasMarker(loaded, loaded_docs,
                          "round" + std::to_string(rounds - 1)));
}

} // namespace
} // namespace dsearch
