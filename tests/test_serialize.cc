/**
 * @file
 * Unit tests for index persistence (index/serialize.hh): the sealed
 * formats (v3 bit-packed by default, v2 varint for segments sealed or
 * loaded with that codec — compressed blocks verbatim either way),
 * the legacy v1 raw format, checked-in v1/v2 back-compat fixtures,
 * and corruption detection for all of them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "index/serialize.hh"
#include "util/logging.hh"

#ifndef DSEARCH_TEST_DATA_DIR
#define DSEARCH_TEST_DATA_DIR "tests/data"
#endif

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** Small fixture index + doc table. */
void
makeSample(InvertedIndex &index, DocTable &docs)
{
    docs.add("/a.txt", 100);
    docs.add("/b.txt", 200);
    docs.add("/c.txt", 300);
    index.addBlock(block(0, {"alpha", "beta"}));
    index.addBlock(block(1, {"beta", "gamma"}));
    index.addBlock(block(2, {"alpha", "gamma", "delta"}));
}

std::string
serializeToString(InvertedIndex &index, const DocTable &docs)
{
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveIndex(index, docs, out));
    return out.str();
}

TEST(Serialize, RoundTripPreservesContents)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);

    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));

    loaded.sortPostings();
    index.sortPostings();
    EXPECT_TRUE(sameContents(index, loaded));
    ASSERT_EQ(loaded_docs.docCount(), 3u);
    EXPECT_EQ(loaded_docs.path(1), "/b.txt");
    EXPECT_EQ(loaded_docs.sizeBytes(2), 300u);
}

TEST(Serialize, CanonicalBytesIndependentOfInsertionOrder)
{
    InvertedIndex a, b;
    DocTable docs;
    docs.add("/x", 1);
    docs.add("/y", 2);
    a.addBlock(block(0, {"p", "q"}));
    a.addBlock(block(1, {"q", "r"}));
    // Same content, different insertion history.
    b.addBlock(block(1, {"r", "q"}));
    b.addBlock(block(0, {"q", "p"}));

    EXPECT_EQ(serializeToString(a, docs), serializeToString(b, docs));
}

TEST(Serialize, EmptyIndexRoundTrips)
{
    InvertedIndex index;
    DocTable docs;
    std::string bytes = serializeToString(index, docs);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded_docs.docCount(), 0u);
}

TEST(Serialize, DetectsBadMagic)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);
    bytes[0] = 'X';

    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, loaded_docs, in));
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, DetectsPayloadCorruption)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);
    // Flip one payload byte (well past the 16-byte header).
    bytes[bytes.size() / 2] ^= 0x40;

    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, loaded_docs, in));
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded_docs.docCount(), 0u);
}

TEST(Serialize, DetectsTruncation)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);

    setLogLevel(LogLevel::Silent);
    for (std::size_t keep :
         {std::size_t(2), bytes.size() / 2, bytes.size() - 1}) {
        InvertedIndex loaded;
        DocTable loaded_docs;
        std::istringstream in(bytes.substr(0, keep),
                              std::ios::binary);
        EXPECT_FALSE(loadIndex(loaded, loaded_docs, in))
            << "accepted truncation to " << keep << " bytes";
    }
    setLogLevel(LogLevel::Info);
}

TEST(Serialize, DetectsEmptyStream)
{
    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable docs;
    std::istringstream in("", std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, docs, in));
    setLogLevel(LogLevel::Info);
}

TEST(Serialize, FileRoundTrip)
{
    std::string path = "/tmp/dsearch_serialize_test_"
                       + std::to_string(::getpid()) + ".idx";
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    ASSERT_TRUE(saveIndexFile(index, docs, path));

    InvertedIndex loaded;
    DocTable loaded_docs;
    ASSERT_TRUE(loadIndexFile(loaded, loaded_docs, path));
    loaded.sortPostings();
    EXPECT_TRUE(sameContents(index, loaded));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFailsGracefully)
{
    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable docs;
    EXPECT_FALSE(
        loadIndexFile(loaded, docs, "/no/such/dir/file.idx"));
    InvertedIndex index;
    EXPECT_FALSE(saveIndexFile(index, docs, "/no/such/dir/file.idx"));
    setLogLevel(LogLevel::Info);
}

/** All (term -> sorted docs) pairs of a unified snapshot. */
std::vector<std::pair<std::string, std::vector<DocId>>>
contents(const IndexSnapshot &snapshot)
{
    std::vector<std::pair<std::string, std::vector<DocId>>> out;
    snapshot.forEachTerm(
        [&out](const std::string &term, PostingCursor cursor) {
            out.emplace_back(term, cursor.toDocSet());
        });
    std::sort(out.begin(), out.end());
    return out;
}

std::string
serializeSnapshotToString(const IndexSnapshot &snapshot,
                          const DocTable &docs)
{
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveSnapshot(snapshot, docs, out));
    return out.str();
}

TEST(SerializeSealed, SnapshotRoundTripPreservesContents)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::string bytes = serializeSnapshotToString(snapshot, docs);
    EXPECT_EQ(bytes[4], 3); // version field (bit-packed seal)

    IndexSnapshot loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
    EXPECT_EQ(contents(loaded), contents(snapshot));
    EXPECT_EQ(loaded.postingCount(), snapshot.postingCount());
    ASSERT_EQ(loaded_docs.docCount(), 3u);
    EXPECT_EQ(loaded_docs.path(1), "/b.txt");
    EXPECT_EQ(loaded_docs.sizeBytes(2), 300u);
}

TEST(SerializeSealed, MultiBlockListsRoundTripLosslessly)
{
    // > 2 blocks, so skip entries go to disk and back.
    InvertedIndex index;
    DocTable docs;
    TermBlock b;
    b.addTerm("common");
    for (DocId doc = 0; doc < 5000; ++doc) {
        docs.add("/f" + std::to_string(doc), doc);
        b.doc = doc * 3; // gaps, so deltas vary
        index.addBlock(b);
    }
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::string bytes = serializeSnapshotToString(snapshot, docs);

    IndexSnapshot loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
    EXPECT_EQ(contents(loaded), contents(snapshot));

    // seekGE still works over the reloaded skip index.
    PostingCursor cursor = loaded.cursor("common");
    ASSERT_TRUE(cursor.seekGE(9000));
    EXPECT_EQ(cursor.doc(), 9000u);
}

TEST(SerializeSealed, CanonicalBytesIndependentOfInsertionOrder)
{
    InvertedIndex a, b;
    DocTable docs;
    docs.add("/x", 1);
    docs.add("/y", 2);
    a.addBlock(block(0, {"p", "q"}));
    a.addBlock(block(1, {"q", "r"}));
    b.addBlock(block(1, {"r", "q"}));
    b.addBlock(block(0, {"q", "p"}));
    EXPECT_EQ(
        serializeSnapshotToString(IndexSnapshot::seal(std::move(a)),
                                  docs),
        serializeSnapshotToString(IndexSnapshot::seal(std::move(b)),
                                  docs));
}

TEST(SerializeSealed, EmptySnapshotRoundTrips)
{
    IndexSnapshot snapshot;
    DocTable docs;
    std::string bytes = serializeSnapshotToString(snapshot, docs);
    IndexSnapshot loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded_docs.docCount(), 0u);
}

TEST(SerializeSealed, LoadsIntoMutableIndex)
{
    // loadIndex() must decode v2 blocks back into raw posting lists.
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    InvertedIndex expected = index.clone();
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::string bytes = serializeSnapshotToString(snapshot, docs);

    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));
    loaded.sortPostings();
    expected.sortPostings();
    EXPECT_TRUE(sameContents(expected, loaded));
}

TEST(SerializeSealed, DetectsPayloadCorruptionAndTruncation)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    std::string bytes = serializeSnapshotToString(snapshot, docs);

    setLogLevel(LogLevel::Silent);
    {
        std::string corrupt = bytes;
        corrupt[corrupt.size() / 2] ^= 0x40;
        IndexSnapshot loaded;
        DocTable loaded_docs;
        std::istringstream in(corrupt, std::ios::binary);
        EXPECT_FALSE(loadSnapshot(loaded, loaded_docs, in));
        EXPECT_TRUE(loaded.empty());
        EXPECT_EQ(loaded_docs.docCount(), 0u);
    }
    for (std::size_t keep :
         {std::size_t(2), bytes.size() / 2, bytes.size() - 1}) {
        IndexSnapshot loaded;
        DocTable loaded_docs;
        std::istringstream in(bytes.substr(0, keep),
                              std::ios::binary);
        EXPECT_FALSE(loadSnapshot(loaded, loaded_docs, in))
            << "accepted truncation to " << keep << " bytes";
    }
    setLogLevel(LogLevel::Info);
}

TEST(SerializeSealed, PackedAndVarintSealsAgreeOnContents)
{
    // The two codecs are different bytes for the same list; loading
    // either must produce the same logical index.
    InvertedIndex a, b;
    DocTable docs;
    TermBlock block;
    block.addTerm("common");
    for (DocId doc = 0; doc < 1000; ++doc) {
        docs.add("/f" + std::to_string(doc), doc);
        block.doc = doc * 7;
        a.addBlock(block);
        b.addBlock(block);
    }
    IndexSnapshot packed =
        IndexSnapshot::seal(std::move(a), PostingCodec::Packed);
    IndexSnapshot varint =
        IndexSnapshot::seal(std::move(b), PostingCodec::Varint);

    for (const std::string &bytes :
         {serializeSnapshotToString(packed, docs),
          serializeSnapshotToString(varint, docs)}) {
        IndexSnapshot loaded;
        DocTable loaded_docs;
        std::istringstream in(bytes, std::ios::binary);
        ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
        EXPECT_EQ(contents(loaded), contents(packed));
    }
}

TEST(SerializeV2, VarintSealWritesV2AndRoundTripsByteIdentically)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    IndexSnapshot snapshot =
        IndexSnapshot::seal(std::move(index), PostingCodec::Varint);
    std::string bytes = serializeSnapshotToString(snapshot, docs);
    EXPECT_EQ(bytes[4], 2); // varint segments keep the v2 format

    IndexSnapshot loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
    EXPECT_EQ(contents(loaded), contents(snapshot));

    // A loaded v2 segment keeps its codec: re-saving transcodes
    // nothing and reproduces the file byte for byte.
    EXPECT_EQ(serializeSnapshotToString(loaded, loaded_docs), bytes);
}

TEST(SerializeV2, BackCompatFixtureLoads)
{
    // tests/data/v2_snapshot.idx is a checked-in version 2 file with
    // the same corpus as the v1 fixture: 300 docs; "common" in every
    // even doc, "weekly" every 7th, "third" every 3rd, "answer" only
    // in doc 42. It must keep loading (and re-saving as v2)
    // regardless of what fresh seals write.
    const std::string path =
        std::string(DSEARCH_TEST_DATA_DIR) + "/v2_snapshot.idx";

    IndexSnapshot snapshot;
    DocTable docs;
    ASSERT_TRUE(loadSnapshotFile(snapshot, docs, path));
    ASSERT_EQ(docs.docCount(), 300u);
    EXPECT_EQ(docs.path(7), "/corpus/f7.txt");
    EXPECT_EQ(snapshot.termCount(), 4u);
    EXPECT_EQ(snapshot.cursor("common").count(), 150u);
    EXPECT_EQ(snapshot.cursor("answer").toDocSet(),
              (std::vector<DocId>{42}));
    PostingCursor weekly = snapshot.cursor("weekly");
    ASSERT_TRUE(weekly.seekGE(100));
    EXPECT_EQ(weekly.doc(), 105u);

    // Byte-identical v2 round trip through the current writer.
    std::string resaved = serializeSnapshotToString(snapshot, docs);
    EXPECT_EQ(resaved[4], 2);
    std::ifstream original(path, std::ios::binary);
    std::stringstream pristine;
    pristine << original.rdbuf();
    EXPECT_EQ(resaved, pristine.str());
}

TEST(SerializeV1, CurrentWriterStillLoadsAsSnapshot)
{
    // The mutable-index overload still writes version 1; every load
    // entry point must keep accepting it.
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    InvertedIndex expected = index.clone();
    std::string bytes = serializeToString(index, docs);
    EXPECT_EQ(bytes[4], 1); // version field

    IndexSnapshot loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(loaded, loaded_docs, in));
    EXPECT_EQ(contents(loaded),
              contents(IndexSnapshot::seal(std::move(expected))));
}

TEST(SerializeV1, BackCompatFixtureLoads)
{
    // tests/data/v1_snapshot.idx is a checked-in version 1 file:
    // 300 docs; "common" in every even doc, "weekly" every 7th,
    // "third" every 3rd, "answer" only in doc 42.
    const std::string path =
        std::string(DSEARCH_TEST_DATA_DIR) + "/v1_snapshot.idx";

    IndexSnapshot snapshot;
    DocTable docs;
    ASSERT_TRUE(loadSnapshotFile(snapshot, docs, path));
    ASSERT_EQ(docs.docCount(), 300u);
    EXPECT_EQ(docs.path(7), "/corpus/f7.txt");
    EXPECT_EQ(docs.sizeBytes(7), 107u);
    EXPECT_EQ(snapshot.termCount(), 4u);
    EXPECT_EQ(snapshot.cursor("common").count(), 150u);
    EXPECT_EQ(snapshot.cursor("answer").toDocSet(),
              (std::vector<DocId>{42}));
    PostingCursor weekly = snapshot.cursor("weekly");
    ASSERT_TRUE(weekly.seekGE(100));
    EXPECT_EQ(weekly.doc(), 105u);

    // The mutable-index loader accepts it too.
    InvertedIndex index;
    DocTable docs2;
    ASSERT_TRUE(loadIndexFile(index, docs2, path));
    EXPECT_EQ(index.termCount(), 4u);
    ASSERT_NE(index.postings("third"), nullptr);
    EXPECT_EQ(index.postings("third")->size(), 100u);

    // And a v1 file re-saved through the snapshot path upgrades to
    // the current (bit-packed v3) format with identical contents.
    std::string v3_bytes = serializeSnapshotToString(snapshot, docs);
    EXPECT_EQ(v3_bytes[4], 3);
    IndexSnapshot reloaded;
    DocTable docs3;
    std::istringstream in(v3_bytes, std::ios::binary);
    ASSERT_TRUE(loadSnapshot(reloaded, docs3, in));
    EXPECT_EQ(contents(reloaded), contents(snapshot));
}

TEST(Serialize, LargePostingListsSurvive)
{
    InvertedIndex index;
    DocTable docs;
    TermBlock b;
    b.addTerm("common");
    for (DocId doc = 0; doc < 5000; ++doc) {
        docs.add("/f" + std::to_string(doc), doc);
        b.doc = doc;
        index.addBlock(b);
    }
    std::string bytes = serializeToString(index, docs);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));
    ASSERT_NE(loaded.postings("common"), nullptr);
    EXPECT_EQ(loaded.postings("common")->size(), 5000u);
}

} // namespace
} // namespace dsearch
