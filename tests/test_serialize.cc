/**
 * @file
 * Unit tests for index persistence (index/serialize.hh), including
 * corruption detection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "index/serialize.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** Small fixture index + doc table. */
void
makeSample(InvertedIndex &index, DocTable &docs)
{
    docs.add("/a.txt", 100);
    docs.add("/b.txt", 200);
    docs.add("/c.txt", 300);
    index.addBlock(block(0, {"alpha", "beta"}));
    index.addBlock(block(1, {"beta", "gamma"}));
    index.addBlock(block(2, {"alpha", "gamma", "delta"}));
}

std::string
serializeToString(InvertedIndex &index, const DocTable &docs)
{
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(saveIndex(index, docs, out));
    return out.str();
}

TEST(Serialize, RoundTripPreservesContents)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);

    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));

    loaded.sortPostings();
    index.sortPostings();
    EXPECT_TRUE(sameContents(index, loaded));
    ASSERT_EQ(loaded_docs.docCount(), 3u);
    EXPECT_EQ(loaded_docs.path(1), "/b.txt");
    EXPECT_EQ(loaded_docs.sizeBytes(2), 300u);
}

TEST(Serialize, CanonicalBytesIndependentOfInsertionOrder)
{
    InvertedIndex a, b;
    DocTable docs;
    docs.add("/x", 1);
    docs.add("/y", 2);
    a.addBlock(block(0, {"p", "q"}));
    a.addBlock(block(1, {"q", "r"}));
    // Same content, different insertion history.
    b.addBlock(block(1, {"r", "q"}));
    b.addBlock(block(0, {"q", "p"}));

    EXPECT_EQ(serializeToString(a, docs), serializeToString(b, docs));
}

TEST(Serialize, EmptyIndexRoundTrips)
{
    InvertedIndex index;
    DocTable docs;
    std::string bytes = serializeToString(index, docs);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded_docs.docCount(), 0u);
}

TEST(Serialize, DetectsBadMagic)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);
    bytes[0] = 'X';

    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, loaded_docs, in));
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, DetectsPayloadCorruption)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);
    // Flip one payload byte (well past the 16-byte header).
    bytes[bytes.size() / 2] ^= 0x40;

    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, loaded_docs, in));
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded_docs.docCount(), 0u);
}

TEST(Serialize, DetectsTruncation)
{
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    std::string bytes = serializeToString(index, docs);

    setLogLevel(LogLevel::Silent);
    for (std::size_t keep :
         {std::size_t(2), bytes.size() / 2, bytes.size() - 1}) {
        InvertedIndex loaded;
        DocTable loaded_docs;
        std::istringstream in(bytes.substr(0, keep),
                              std::ios::binary);
        EXPECT_FALSE(loadIndex(loaded, loaded_docs, in))
            << "accepted truncation to " << keep << " bytes";
    }
    setLogLevel(LogLevel::Info);
}

TEST(Serialize, DetectsEmptyStream)
{
    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable docs;
    std::istringstream in("", std::ios::binary);
    EXPECT_FALSE(loadIndex(loaded, docs, in));
    setLogLevel(LogLevel::Info);
}

TEST(Serialize, FileRoundTrip)
{
    std::string path = "/tmp/dsearch_serialize_test_"
                       + std::to_string(::getpid()) + ".idx";
    InvertedIndex index;
    DocTable docs;
    makeSample(index, docs);
    ASSERT_TRUE(saveIndexFile(index, docs, path));

    InvertedIndex loaded;
    DocTable loaded_docs;
    ASSERT_TRUE(loadIndexFile(loaded, loaded_docs, path));
    loaded.sortPostings();
    EXPECT_TRUE(sameContents(index, loaded));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFailsGracefully)
{
    setLogLevel(LogLevel::Silent);
    InvertedIndex loaded;
    DocTable docs;
    EXPECT_FALSE(
        loadIndexFile(loaded, docs, "/no/such/dir/file.idx"));
    InvertedIndex index;
    EXPECT_FALSE(saveIndexFile(index, docs, "/no/such/dir/file.idx"));
    setLogLevel(LogLevel::Info);
}

TEST(Serialize, LargePostingListsSurvive)
{
    InvertedIndex index;
    DocTable docs;
    TermBlock b;
    b.addTerm("common");
    for (DocId doc = 0; doc < 5000; ++doc) {
        docs.add("/f" + std::to_string(doc), doc);
        b.doc = doc;
        index.addBlock(b);
    }
    std::string bytes = serializeToString(index, docs);
    InvertedIndex loaded;
    DocTable loaded_docs;
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(loadIndex(loaded, loaded_docs, in));
    ASSERT_NE(loaded.postings("common"), nullptr);
    EXPECT_EQ(loaded.postings("common")->size(), 5000u);
}

} // namespace
} // namespace dsearch
