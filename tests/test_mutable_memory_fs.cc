/**
 * @file
 * Tests for the concurrently mutable in-memory filesystem
 * (fs/mutable_memory_fs.hh): path normalization, implicit
 * directories, deterministic listings, the logical mtime clock, and
 * reader/writer thread safety (part of the check_tsan_live_index
 * suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fs/mutable_memory_fs.hh"

namespace dsearch {
namespace {

TEST(MutableMemoryFsTest, AddAndReadFile)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "hello");
    EXPECT_TRUE(fs.isFile("/a.txt"));
    EXPECT_EQ(fs.fileSize("/a.txt"), 5u);
    std::string content;
    ASSERT_TRUE(fs.readFile("/a.txt", content));
    EXPECT_EQ(content, "hello");
    EXPECT_EQ(fs.fileCount(), 1u);
}

TEST(MutableMemoryFsTest, ReplaceBumpsMtime)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "one");
    std::uint64_t first = fs.fileMtime("/a.txt");
    EXPECT_GT(first, 0u);
    fs.addFile("/a.txt", "two"); // same size, new content
    std::uint64_t second = fs.fileMtime("/a.txt");
    EXPECT_GT(second, first);
    EXPECT_EQ(fs.fileCount(), 1u);
}

TEST(MutableMemoryFsTest, ImplicitDirectories)
{
    MutableMemoryFs fs;
    fs.addFile("/docs/work/a.txt", "a");
    EXPECT_TRUE(fs.isDirectory("/"));
    EXPECT_TRUE(fs.isDirectory("/docs"));
    EXPECT_TRUE(fs.isDirectory("/docs/work"));
    EXPECT_FALSE(fs.isDirectory("/docs/work/a.txt"));
    EXPECT_FALSE(fs.isDirectory("/other"));

    // Removing the only file under a directory removes the directory.
    EXPECT_TRUE(fs.removeFile("/docs/work/a.txt"));
    EXPECT_FALSE(fs.isDirectory("/docs"));
    EXPECT_FALSE(fs.removeFile("/docs/work/a.txt")); // already gone
}

TEST(MutableMemoryFsTest, ListIsSortedAndComplete)
{
    MutableMemoryFs fs;
    fs.addFile("/b.txt", "b");
    fs.addFile("/a.txt", "a");
    fs.addFile("/sub/x.txt", "x");
    fs.addFile("/sub/y.txt", "y");
    fs.addFile("/zub/z.txt", "z");

    std::vector<DirEntry> entries = fs.list("/");
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].name, "a.txt");
    EXPECT_FALSE(entries[0].is_dir);
    EXPECT_EQ(entries[1].name, "b.txt");
    EXPECT_EQ(entries[2].name, "sub");
    EXPECT_TRUE(entries[2].is_dir);
    EXPECT_EQ(entries[3].name, "zub");
    EXPECT_TRUE(entries[3].is_dir);

    std::vector<DirEntry> sub = fs.list("/sub");
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub[0].name, "x.txt");
    EXPECT_EQ(sub[1].name, "y.txt");
}

TEST(MutableMemoryFsTest, NormalizesSloppyPaths)
{
    MutableMemoryFs fs;
    fs.addFile("//docs///a.txt", "a");
    EXPECT_TRUE(fs.isFile("/docs/a.txt"));
    EXPECT_TRUE(fs.isDirectory("/docs/"));
    EXPECT_TRUE(fs.removeFile("/docs/a.txt/"));
}

TEST(MutableMemoryFsTest, MissingPathsBehave)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "a");
    EXPECT_FALSE(fs.isFile("/missing"));
    EXPECT_EQ(fs.fileSize("/missing"), 0u);
    EXPECT_EQ(fs.fileMtime("/missing"), 0u);
    std::string content;
    EXPECT_FALSE(fs.readFile("/missing", content));
    EXPECT_TRUE(fs.list("/missing").empty());
}

/**
 * Reader/writer race: one thread churns files while others walk and
 * read. The assertions are weak (no torn sizes, list() never throws);
 * the real check is TSan finding no data race.
 */
TEST(MutableMemoryFsTest, ConcurrentReadersAndWriter)
{
    MutableMemoryFs fs;
    for (int i = 0; i < 16; ++i)
        fs.addFile("/stable/f" + std::to_string(i) + ".txt",
                   std::string(16, 'x'));

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (int round = 0; round < 400; ++round) {
            std::string path =
                "/churn/f" + std::to_string(round % 8) + ".txt";
            if (round % 3 == 2)
                fs.removeFile(path);
            else
                fs.addFile(path, std::string(8 + round % 5, 'y'));
        }
        stop.store(true);
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            std::string content;
            while (!stop.load()) {
                for (const DirEntry &top : fs.list("/")) {
                    if (!top.is_dir)
                        continue;
                    for (const DirEntry &entry :
                         fs.list("/" + top.name)) {
                        std::string path =
                            "/" + top.name + "/" + entry.name;
                        // A successful read must never be torn:
                        // every body written is one repeated char.
                        if (fs.readFile(path, content)
                            && !content.empty())
                            EXPECT_EQ(content.find_first_not_of(
                                          content[0]),
                                      std::string::npos);
                    }
                }
            }
        });
    }

    writer.join();
    for (std::thread &reader : readers)
        reader.join();

    // The stable tree survived the churn untouched.
    EXPECT_EQ(fs.list("/stable").size(), 16u);
}

} // namespace
} // namespace dsearch
