/**
 * @file
 * Tests for the re-scan change feed (live/scan_diff.hh): walk
 * capture, the size/mtime modification rule, linear-merge diffing,
 * the "live.scan" abort contract, and DocTable baseline
 * reconstruction for crash recovery.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fs/memory_fs.hh"
#include "fs/mutable_memory_fs.hh"
#include "index/doc_table.hh"
#include "live/scan_diff.hh"
#include "util/fault.hh"

namespace dsearch {
namespace {

class ScanDiffTest : public ::testing::Test
{
  protected:
    void SetUp() override { disarmAllFaults(); }
    void TearDown() override { disarmAllFaults(); }
};

TEST_F(ScanDiffTest, CapturesEveryRegularFile)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "aaa");
    fs.addFile("/docs/b.txt", "bb");
    fs.addFile("/docs/deep/c.txt", "c");

    ScanSnapshot scan;
    ASSERT_TRUE(scanFileSystem(fs, "/", scan));
    ASSERT_EQ(scan.size(), 3u);
    EXPECT_EQ(scan.at("/a.txt").size, 3u);
    EXPECT_EQ(scan.at("/docs/b.txt").size, 2u);
    EXPECT_EQ(scan.at("/docs/deep/c.txt").size, 1u);
    EXPECT_GT(scan.at("/a.txt").mtime, 0u);
}

TEST_F(ScanDiffTest, DiffDetectsCreateModifyDelete)
{
    MutableMemoryFs fs;
    fs.addFile("/keep.txt", "same");
    fs.addFile("/edit.txt", "v1");
    fs.addFile("/gone.txt", "bye");

    ScanSnapshot before;
    ASSERT_TRUE(scanFileSystem(fs, "/", before));

    fs.addFile("/new.txt", "hi");
    fs.addFile("/edit.txt", "v2-longer");
    fs.removeFile("/gone.txt");

    ScanSnapshot after;
    ASSERT_TRUE(scanFileSystem(fs, "/", after));

    ScanDiff diff = diffScans(before, after);
    ASSERT_EQ(diff.created.size(), 1u);
    EXPECT_EQ(diff.created[0], "/new.txt");
    ASSERT_EQ(diff.modified.size(), 1u);
    EXPECT_EQ(diff.modified[0], "/edit.txt");
    ASSERT_EQ(diff.deleted.size(), 1u);
    EXPECT_EQ(diff.deleted[0], "/gone.txt");
}

TEST_F(ScanDiffTest, SameSizeRewriteDetectedViaMtime)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "aaaa");
    ScanSnapshot before;
    ASSERT_TRUE(scanFileSystem(fs, "/", before));

    fs.addFile("/a.txt", "bbbb"); // same size, mtime bumps
    ScanSnapshot after;
    ASSERT_TRUE(scanFileSystem(fs, "/", after));

    ScanDiff diff = diffScans(before, after);
    ASSERT_EQ(diff.modified.size(), 1u);
    EXPECT_EQ(diff.modified[0], "/a.txt");
}

TEST_F(ScanDiffTest, ZeroMtimeFallsBackToSizeOnly)
{
    // MemoryFs population order gives mtimes; a baseline from a
    // DocTable has mtime 0. Equal sizes + one zero mtime must NOT
    // read as modified (that would re-index the whole corpus after
    // every recovery).
    ScanSnapshot prev;
    prev["/a.txt"] = FileState{10, 0};
    ScanSnapshot next;
    next["/a.txt"] = FileState{10, 42};
    EXPECT_TRUE(diffScans(prev, next).empty());

    // But a size change always counts, mtimes or not.
    next["/a.txt"].size = 11;
    ScanDiff diff = diffScans(prev, next);
    ASSERT_EQ(diff.modified.size(), 1u);
}

TEST_F(ScanDiffTest, IdenticalScansDiffEmpty)
{
    MutableMemoryFs fs;
    fs.addFile("/a.txt", "a");
    fs.addFile("/b/c.txt", "c");
    ScanSnapshot one, two;
    ASSERT_TRUE(scanFileSystem(fs, "/", one));
    ASSERT_TRUE(scanFileSystem(fs, "/", two));
    EXPECT_TRUE(diffScans(one, two).empty());
}

TEST_F(ScanDiffTest, WorksOnImmutableMemoryFs)
{
    // The scanner must work over any FileSystem, including the
    // immutable build-bench one (whose fileMtime is population
    // order).
    MemoryFs fs;
    fs.addFile("/x.txt", "xx");
    fs.addFile("/d/y.txt", "y");
    ScanSnapshot scan;
    ASSERT_TRUE(scanFileSystem(fs, "/", scan));
    ASSERT_EQ(scan.size(), 2u);
    EXPECT_EQ(scan.at("/x.txt").size, 2u);
}

TEST_F(ScanDiffTest, AbortedWalkReturnsFalse)
{
    MutableMemoryFs fs;
    fs.addFile("/a/one.txt", "1");
    fs.addFile("/b/two.txt", "2");
    fs.addFile("/c/three.txt", "3");

    ScopedFault fault("live.scan", {.fire_limit = 1});
    ScanSnapshot scan;
    EXPECT_FALSE(scanFileSystem(fs, "/", scan));
    EXPECT_EQ(fault.fires(), 1u);

    // Disarmed (fire budget spent): the same walk completes.
    ASSERT_TRUE(scanFileSystem(fs, "/", scan));
    EXPECT_EQ(scan.size(), 3u);
}

TEST_F(ScanDiffTest, BaselineFromDocTable)
{
    DocTable docs;
    docs.add("/a.txt", 10);
    docs.add("/b.txt", 20);
    docs.add("/a.txt", 12); // superseding version: later id wins

    ScanSnapshot base = baselineFromDocTable(docs);
    ASSERT_EQ(base.size(), 2u);
    EXPECT_EQ(base.at("/a.txt").size, 12u);
    EXPECT_EQ(base.at("/a.txt").mtime, 0u);
    EXPECT_EQ(base.at("/b.txt").size, 20u);
}

} // namespace
} // namespace dsearch
