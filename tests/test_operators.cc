/**
 * @file
 * Unit and property tests for the cursor-operator algebra
 * (search/operators.hh): the k-way heap union over posting cursors
 * against a sorted-merge fold oracle, each operator (Term/All/And/
 * Or/Diff) against plain set algebra on random corpora, and the
 * bulk term paths against their general counterparts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "search/operators.hh"
#include "search/plan.hh"
#include "search/searcher.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

constexpr std::size_t vocab = 10;
constexpr std::size_t doc_count = 600;

std::string
word(std::size_t v)
{
    return "w" + std::to_string(v);
}

/**
 * Random index big enough that posting lists span several 128-doc
 * blocks, so the bulk block-copy paths (whole blocks, straddling
 * prefixes, duplicate heads) all execute.
 */
struct Fixture
{
    IndexSnapshot snapshot;
    std::vector<DocSet> postings; // per term, sorted

    explicit
    Fixture(std::uint64_t seed)
        : postings(vocab)
    {
        Rng rng(seed);
        InvertedIndex index;
        for (DocId doc = 0; doc < doc_count; ++doc) {
            TermBlock block;
            block.doc = doc;
            bool any = false;
            for (std::size_t v = 0; v < vocab; ++v) {
                // Skewed densities: w0 is common, w9 rare.
                if (rng.bernoulli(0.7 / static_cast<double>(v + 1))) {
                    block.addTerm(word(v));
                    postings[v].push_back(doc);
                    any = true;
                }
            }
            if (any)
                index.addBlock(block);
        }
        snapshot = IndexSnapshot::seal(std::move(index));
    }

    SegmentReader
    reader() const
    {
        return snapshot.segment(0);
    }
};

DocSet
fullUniverse()
{
    DocSet universe(doc_count);
    for (DocId doc = 0; doc < doc_count; ++doc)
        universe[doc] = doc;
    return universe;
}

class OperatorsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OperatorsTest, UniteTermCursorsMatchesSetUnionFold)
{
    Fixture fixture(GetParam());
    Rng rng(GetParam() * 101 + 13);
    for (int round = 0; round < 40; ++round) {
        const std::size_t n = 1 + rng.uniform(0, 5);
        std::vector<PostingCursor> cursors;
        DocSet expected;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t v = rng.uniform(0, vocab + 2);
            const std::string term =
                v < vocab ? word(v) : "missing"; // absent terms too
            cursors.push_back(fixture.reader().cursor(term));
            if (v < vocab)
                expected = uniteSets(expected, fixture.postings[v]);
        }
        EXPECT_EQ(uniteTermCursors(std::move(cursors)), expected);
    }
}

TEST_P(OperatorsTest, UniteTermCursorsEdgeCases)
{
    Fixture fixture(GetParam());
    EXPECT_TRUE(uniteTermCursors({}).empty());
    EXPECT_TRUE(
        uniteTermCursors(
            {fixture.reader().cursor("missing"),
             fixture.reader().cursor("also-missing")})
            .empty());
    // Single live list: the drain path.
    std::vector<PostingCursor> one;
    one.push_back(fixture.reader().cursor(word(0)));
    EXPECT_EQ(uniteTermCursors(std::move(one)), fixture.postings[0]);
    // The same list twice: every head is a duplicate head.
    std::vector<PostingCursor> twice;
    twice.push_back(fixture.reader().cursor(word(1)));
    twice.push_back(fixture.reader().cursor(word(1)));
    EXPECT_EQ(uniteTermCursors(std::move(twice)),
              fixture.postings[1]);
}

TEST_P(OperatorsTest, TermOpClipsToUniverse)
{
    Fixture fixture(GetParam());
    TermOp op(word(0));
    const DocSet universe = fullUniverse();
    SegmentReader reader = fixture.reader();
    EXPECT_EQ(op.eval(OpContext{reader, universe}),
              fixture.postings[0]);

    // Subset universe: only even docs survive.
    DocSet evens;
    for (DocId doc = 0; doc < doc_count; doc += 2)
        evens.push_back(doc);
    DocSet expected;
    for (DocId doc : fixture.postings[0])
        if (doc % 2 == 0)
            expected.push_back(doc);
    EXPECT_EQ(op.eval(OpContext{reader, evens}), expected);
}

TEST_P(OperatorsTest, AllOpReturnsUniverse)
{
    Fixture fixture(GetParam());
    AllOp op;
    DocSet universe{3, 5, 9};
    SegmentReader reader = fixture.reader();
    EXPECT_EQ(op.eval(OpContext{reader, universe}), universe);
}

TEST_P(OperatorsTest, AndOpMatchesSetIntersection)
{
    Fixture fixture(GetParam());
    SegmentReader reader = fixture.reader();
    const DocSet universe = fullUniverse();

    // Pure term form (the bulk SIMD path).
    AndOp terms({word(0), word(1), word(2)}, {});
    DocSet expected = intersectSets(
        intersectSets(fixture.postings[0], fixture.postings[1]),
        fixture.postings[2]);
    EXPECT_EQ(terms.eval(OpContext{reader, universe}), expected);

    // Mixed form: terms plus a compound operand.
    std::vector<std::shared_ptr<const CursorOp>> rest;
    rest.push_back(std::make_shared<OrOp>(
        std::vector<std::string>{word(3), word(4)},
        std::vector<std::shared_ptr<const CursorOp>>{}));
    AndOp mixed({word(0)}, std::move(rest));
    DocSet expected_mixed = intersectSets(
        fixture.postings[0],
        uniteSets(fixture.postings[3], fixture.postings[4]));
    EXPECT_EQ(mixed.eval(OpContext{reader, universe}),
              expected_mixed);

    // An absent term empties the intersection early.
    AndOp dead({word(0), "missing"}, {});
    EXPECT_TRUE(dead.eval(OpContext{reader, universe}).empty());
}

TEST_P(OperatorsTest, OrOpMatchesSetUnion)
{
    Fixture fixture(GetParam());
    SegmentReader reader = fixture.reader();
    const DocSet universe = fullUniverse();

    std::vector<std::shared_ptr<const CursorOp>> rest;
    rest.push_back(std::make_shared<AndOp>(
        std::vector<std::string>{word(0), word(1)},
        std::vector<std::shared_ptr<const CursorOp>>{}));
    OrOp op({word(5), word(6)}, std::move(rest));
    DocSet expected = uniteSets(
        uniteSets(fixture.postings[5], fixture.postings[6]),
        intersectSets(fixture.postings[0], fixture.postings[1]));
    EXPECT_EQ(op.eval(OpContext{reader, universe}), expected);
}

TEST_P(OperatorsTest, DiffOpMatchesSetDifference)
{
    Fixture fixture(GetParam());
    SegmentReader reader = fixture.reader();
    const DocSet universe = fullUniverse();

    DiffOp op(std::make_shared<TermOp>(word(0)),
              std::make_shared<TermOp>(word(1)));
    EXPECT_EQ(op.eval(OpContext{reader, universe}),
              subtractSets(fixture.postings[0],
                           fixture.postings[1]));

    // NOT-only form: universe minus a term.
    DiffOp not_only(std::make_shared<AllOp>(),
                    std::make_shared<TermOp>(word(2)));
    EXPECT_EQ(not_only.eval(OpContext{reader, universe}),
              subtractSets(universe, fixture.postings[2]));
}

TEST_P(OperatorsTest, DiffApplyIsTheAntiJoin)
{
    Fixture fixture(GetParam());
    DocSet matches = fixture.postings[0];
    const DocSet dead = fixture.postings[1];
    EXPECT_EQ(DiffOp::apply(DocSet(matches), dead),
              subtractSets(matches, dead));
    EXPECT_EQ(DiffOp::apply(DocSet(matches), {}), matches);
    EXPECT_TRUE(DiffOp::apply({}, dead).empty());
}

TEST_P(OperatorsTest, BuildOperatorsEvaluatesWholePlans)
{
    Fixture fixture(GetParam());
    SegmentReader reader = fixture.reader();
    const DocSet universe = fullUniverse();

    Query query = Query::parse(
        "(w0 AND w1) OR (w5 AND NOT w2) OR NOT w0");
    ASSERT_TRUE(query.valid());
    QueryPlan plan = QueryPlan::compile(query);
    DocSet expected = uniteSets(
        uniteSets(
            intersectSets(fixture.postings[0], fixture.postings[1]),
            subtractSets(fixture.postings[5], fixture.postings[2])),
        subtractSets(universe, fixture.postings[0]));
    EXPECT_EQ(plan.ops().eval(OpContext{reader, universe}),
              expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorsTest,
                         ::testing::Values(1, 7, 42, 1234));

} // namespace
} // namespace dsearch
