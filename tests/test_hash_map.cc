/**
 * @file
 * Unit and property tests for the open-addressing HashMap
 * (util/hash_map.hh), including randomized model-based comparison
 * against std::unordered_map.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash_map.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

using Map = HashMap<std::string, int>;

TEST(HashMap, StartsEmpty)
{
    Map map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.find("missing"), nullptr);
    EXPECT_FALSE(map.contains("missing"));
}

TEST(HashMap, InsertAndFind)
{
    Map map;
    EXPECT_TRUE(map.insert("alpha", 1));
    EXPECT_TRUE(map.insert("beta", 2));
    ASSERT_NE(map.find("alpha"), nullptr);
    EXPECT_EQ(*map.find("alpha"), 1);
    ASSERT_NE(map.find("beta"), nullptr);
    EXPECT_EQ(*map.find("beta"), 2);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HashMap, InsertDuplicateKeepsOriginal)
{
    Map map;
    EXPECT_TRUE(map.insert("key", 1));
    EXPECT_FALSE(map.insert("key", 99));
    EXPECT_EQ(*map.find("key"), 1);
    EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, SubscriptDefaultConstructs)
{
    Map map;
    EXPECT_EQ(map["new"], 0);
    map["new"] = 7;
    EXPECT_EQ(map["new"], 7);
    EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, EraseExisting)
{
    Map map;
    map.insert("a", 1);
    map.insert("b", 2);
    EXPECT_TRUE(map.erase("a"));
    EXPECT_EQ(map.find("a"), nullptr);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_NE(map.find("b"), nullptr);
}

TEST(HashMap, EraseMissingReturnsFalse)
{
    Map map;
    map.insert("a", 1);
    EXPECT_FALSE(map.erase("zz"));
    EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, EraseOnEmptyMap)
{
    Map map;
    EXPECT_FALSE(map.erase("anything"));
}

TEST(HashMap, ClearKeepsCapacity)
{
    Map map;
    for (int i = 0; i < 100; ++i)
        map.insert("k" + std::to_string(i), i);
    std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find("k5"), nullptr);
}

TEST(HashMap, ReserveAvoidsRehash)
{
    Map map;
    map.reserve(1000);
    std::size_t cap = map.capacity();
    for (int i = 0; i < 1000; ++i)
        map.insert("k" + std::to_string(i), i);
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.size(), 1000u);
}

TEST(HashMap, GrowsPastInitialCapacity)
{
    Map map;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        map.insert("key" + std::to_string(i), i);
    EXPECT_EQ(map.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        ASSERT_NE(map.find("key" + std::to_string(i)), nullptr)
            << "lost key " << i;
        EXPECT_EQ(*map.find("key" + std::to_string(i)), i);
    }
}

TEST(HashMap, LoadFactorStaysBelowGrowthBound)
{
    Map map;
    for (int i = 0; i < 10000; ++i) {
        map.insert("k" + std::to_string(i), i);
        ASSERT_LE(map.loadFactor(), 5.0 / 8.0 + 1e-9);
    }
}

TEST(HashMap, IterationVisitsEveryElementOnce)
{
    Map map;
    for (int i = 0; i < 300; ++i)
        map.insert("k" + std::to_string(i), i);
    std::unordered_map<std::string, int> seen;
    for (const auto &slot : map) {
        EXPECT_TRUE(seen.emplace(slot.key, slot.value).second)
            << "duplicate visit of " << slot.key;
    }
    EXPECT_EQ(seen.size(), 300u);
    for (const auto &[key, value] : seen)
        EXPECT_EQ(key, "k" + std::to_string(value));
}

TEST(HashMap, IterationOnEmptyMap)
{
    Map map;
    EXPECT_TRUE(map.begin() == map.end());
}

TEST(HashMap, MutationThroughIterator)
{
    Map map;
    map.insert("a", 1);
    map.insert("b", 2);
    for (auto &slot : map)
        slot.value *= 10;
    EXPECT_EQ(*map.find("a"), 10);
    EXPECT_EQ(*map.find("b"), 20);
}

/** Colliding hash to force long probe chains. */
struct DegenerateHash
{
    std::size_t operator()(const int &) const { return 42; }
};

TEST(HashMap, SurvivesFullCollisionChains)
{
    HashMap<int, int, DegenerateHash> map;
    for (int i = 0; i < 64; ++i)
        map.insert(i, i * 2);
    for (int i = 0; i < 64; ++i) {
        ASSERT_NE(map.find(i), nullptr);
        EXPECT_EQ(*map.find(i), i * 2);
    }
    // Backward-shift erase inside one long chain.
    EXPECT_TRUE(map.erase(10));
    EXPECT_TRUE(map.erase(40));
    for (int i = 0; i < 64; ++i) {
        if (i == 10 || i == 40) {
            EXPECT_EQ(map.find(i), nullptr);
        } else {
            ASSERT_NE(map.find(i), nullptr) << "chain broken at " << i;
        }
    }
}

TEST(HashMap, MoveConstructible)
{
    Map map;
    map.insert("x", 1);
    Map moved(std::move(map));
    ASSERT_NE(moved.find("x"), nullptr);
    EXPECT_EQ(*moved.find("x"), 1);
}

TEST(HashMap, VectorValues)
{
    HashMap<std::string, std::vector<int>> map;
    map["list"].push_back(1);
    map["list"].push_back(2);
    ASSERT_NE(map.find("list"), nullptr);
    EXPECT_EQ(map.find("list")->size(), 2u);
}

TEST(HashMap, HeterogeneousStringViewLookup)
{
    Map map;
    map.insert("alpha", 1);
    map.insert("beta", 2);

    // Probe with string_view and char literals; no std::string needed.
    std::string_view alpha_view("alpha");
    ASSERT_NE(map.find(alpha_view), nullptr);
    EXPECT_EQ(*map.find(alpha_view), 1);
    EXPECT_TRUE(map.contains(std::string_view("beta")));
    EXPECT_FALSE(map.contains(std::string_view("gamma")));
    EXPECT_TRUE(map.erase(std::string_view("alpha")));
    EXPECT_EQ(map.find(alpha_view), nullptr);
}

TEST(HashMap, HeterogeneousInsertMaterializesOnlyWhenNew)
{
    Map map;
    std::string backing = "term0";
    EXPECT_TRUE(map.insert(std::string_view(backing), 7));
    // Re-inserting through a view of different backing storage must
    // dedup against the stored std::string.
    std::string other = "term0";
    EXPECT_FALSE(map.insert(std::string_view(other), 9));
    EXPECT_EQ(*map.find("term0"), 7);
    EXPECT_EQ(map.size(), 1u);
}

TEST(HashMap, HashedApiMatchesPlainApi)
{
    Map map;
    FnvHash<std::string> hasher;
    std::string_view key("precomputed");
    std::size_t hash = hasher(key);

    EXPECT_TRUE(map.insertHashed(hash, key, 3));
    EXPECT_FALSE(map.insertHashed(hash, key, 4));
    ASSERT_NE(map.findHashed(hash, key), nullptr);
    EXPECT_EQ(*map.findHashed(hash, key), 3);
    EXPECT_EQ(map.find("precomputed"), map.findHashed(hash, key));

    map.findOrEmplaceHashed(hash, key) = 11;
    EXPECT_EQ(*map.find("precomputed"), 11);
}

TEST(HashMap, CachedHashInvariantAcrossRehashAndErase)
{
    Map map;
    FnvHash<std::string> hasher;
    // Grow through several rehashes.
    for (int i = 0; i < 2000; ++i)
        map.insert("key" + std::to_string(i), i);
    // Backward-shift erase of a third of the keys.
    for (int i = 0; i < 2000; i += 3)
        ASSERT_TRUE(map.erase("key" + std::to_string(i)));

    std::size_t visited = 0;
    for (const auto &slot : map) {
        ASSERT_EQ(slot.hash, hasher(slot.key))
            << "stale cached hash for " << slot.key;
        ++visited;
    }
    EXPECT_EQ(visited, map.size());
    for (int i = 0; i < 2000; ++i) {
        const int *found = map.find("key" + std::to_string(i));
        if (i % 3 == 0)
            EXPECT_EQ(found, nullptr);
        else
            ASSERT_NE(found, nullptr);
    }
}

/** Counts invocations to prove rehashing never re-hashes keys. */
struct CountingHash
{
    static inline std::size_t calls = 0;

    template <typename K>
    std::size_t
    operator()(const K &key) const
    {
        ++calls;
        return FnvHash<std::string>{}(key);
    }
};

TEST(HashMap, RehashNeverInvokesHashFunctor)
{
    HashMap<std::string, int, CountingHash> map;
    CountingHash::calls = 0;
    const int n = 5000; // forces many growth rehashes from capacity 16
    for (int i = 0; i < n; ++i)
        map.insert("key" + std::to_string(i), i);
    // Exactly one hash per insert call; rehashes reuse cached hashes.
    EXPECT_EQ(CountingHash::calls, static_cast<std::size_t>(n));

    CountingHash::calls = 0;
    for (int i = 0; i < n; i += 7)
        map.erase("key" + std::to_string(i));
    // One hash per erase; backward-shifting re-homes by cached hash.
    EXPECT_EQ(CountingHash::calls, static_cast<std::size_t>(n / 7 + 1));
}

/**
 * Model-based property test: a random operation stream must keep the
 * HashMap equivalent to std::unordered_map.
 */
class HashMapModelTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HashMapModelTest, MatchesStdUnorderedMap)
{
    Rng rng(GetParam());
    Map map;
    std::unordered_map<std::string, int> model;

    for (int step = 0; step < 4000; ++step) {
        // Small key space forces collisions of intent (insert over
        // existing, erase of present keys).
        std::string key = "k" + std::to_string(rng.uniform(0, 200));
        switch (rng.uniform(0, 3)) {
          case 0: { // insert
            int value = static_cast<int>(rng.uniform(0, 1 << 20));
            bool inserted = map.insert(key, value);
            bool model_inserted = model.emplace(key, value).second;
            ASSERT_EQ(inserted, model_inserted);
            break;
          }
          case 1: { // erase
            ASSERT_EQ(map.erase(key), model.erase(key) > 0);
            break;
          }
          case 2: { // lookup
            const int *found = map.find(key);
            auto it = model.find(key);
            ASSERT_EQ(found != nullptr, it != model.end());
            if (found != nullptr)
                ASSERT_EQ(*found, it->second);
            break;
          }
          case 3: { // subscript write
            int value = static_cast<int>(rng.uniform(0, 1 << 20));
            map[key] = value;
            model[key] = value;
            break;
          }
        }
        ASSERT_EQ(map.size(), model.size());
    }

    // Final full sweep both directions.
    for (const auto &[key, value] : model) {
        ASSERT_NE(map.find(key), nullptr);
        ASSERT_EQ(*map.find(key), value);
    }
    std::size_t visited = 0;
    for (const auto &slot : map) {
        auto it = model.find(slot.key);
        ASSERT_NE(it, model.end());
        ASSERT_EQ(it->second, slot.value);
        ++visited;
    }
    ASSERT_EQ(visited, model.size());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HashMapModelTest,
                         ::testing::Values(1, 2, 3, 7, 1234, 99999));

} // namespace
} // namespace dsearch
