/**
 * @file
 * Unit tests for the ASCII table renderer (util/table.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace dsearch {
namespace {

TEST(Table, RendersHeadersAndRows)
{
    Table table("Results");
    table.setColumns({"config", "time (s)"});
    table.addRow({"(3, 1, 0)", "46.7"});
    std::string out = table.toString();
    EXPECT_NE(out.find("Results"), std::string::npos);
    EXPECT_NE(out.find("config"), std::string::npos);
    EXPECT_NE(out.find("(3, 1, 0)"), std::string::npos);
    EXPECT_NE(out.find("46.7"), std::string::npos);
}

TEST(Table, ColumnWidthsFitLongestCell)
{
    Table table("");
    table.setColumns({"a", "b"});
    table.addRow({"averyverylongcell", "x"});
    std::string out = table.toString();
    // Every rendered line must have the same length.
    std::istringstream iss(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << "ragged line: " << line;
    }
}

TEST(Table, DefaultAlignmentFirstLeftRestRight)
{
    Table table("");
    table.setColumns({"name", "value"});
    table.addRow({"x", "1"});
    std::string out = table.toString();
    // "x" padded on the right, "1" padded on the left.
    EXPECT_NE(out.find("| x    |"), std::string::npos);
    EXPECT_NE(out.find("|     1 |"), std::string::npos);
}

TEST(Table, ExplicitAlignment)
{
    Table table("");
    table.setColumns({"col1", "col2"});
    table.setAlignments({Align::Right, Align::Left});
    table.addRow({"r", "l"});
    std::string out = table.toString();
    EXPECT_NE(out.find("|    r |"), std::string::npos);
    EXPECT_NE(out.find("| l    |"), std::string::npos);
}

TEST(Table, SeparatorRows)
{
    Table table("");
    table.setColumns({"a"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    std::string out = table.toString();
    // Rule lines: top, under header, separator, bottom = 4.
    int rules = 0;
    std::istringstream iss(out);
    std::string line;
    while (std::getline(iss, line))
        if (!line.empty() && line[0] == '+')
            ++rules;
    EXPECT_EQ(rules, 4);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, RowCountExcludesSeparators)
{
    Table table("t");
    table.setColumns({"a", "b"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"1", "2"});
    table.addSeparator();
    EXPECT_EQ(table.rowCount(), 1u);
}

TEST(TableDeath, MismatchedRowPanics)
{
    Table table("t");
    table.setColumns({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "mismatch");
}

TEST(TableDeath, RenderWithoutColumnsPanics)
{
    Table table("t");
    EXPECT_DEATH(table.toString(), "no columns");
}

TEST(TableDeath, MismatchedAlignmentsPanics)
{
    Table table("t");
    table.setColumns({"a", "b"});
    EXPECT_DEATH(table.setAlignments({Align::Left}), "mismatch");
}

} // namespace
} // namespace dsearch
