/**
 * @file
 * Unit and property tests for work-distribution strategies
 * (pipeline/distribution.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "pipeline/distribution.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

FileList
makeFiles(std::size_t n, std::uint64_t seed = 3)
{
    Rng rng(seed);
    FileList files;
    for (std::size_t i = 0; i < n; ++i) {
        FileEntry entry;
        entry.doc = static_cast<DocId>(i);
        entry.path = "/f" + std::to_string(i);
        entry.size = rng.uniform(10, 50000);
        files.push_back(std::move(entry));
    }
    return files;
}

TEST(Distribution, RoundRobinAssignment)
{
    FileList files = makeFiles(10);
    auto shards = distributeRoundRobin(files, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].size(), 4u); // 0, 3, 6, 9
    EXPECT_EQ(shards[1].size(), 3u);
    EXPECT_EQ(shards[2].size(), 3u);
    EXPECT_EQ(shards[0][1].doc, 3u);
    EXPECT_EQ(shards[2][0].doc, 2u);
}

TEST(Distribution, RoundRobinCoversEveryFileOnce)
{
    FileList files = makeFiles(101);
    auto shards = distributeRoundRobin(files, 7);
    std::set<DocId> seen;
    for (const FileList &shard : shards)
        for (const FileEntry &file : shard)
            EXPECT_TRUE(seen.insert(file.doc).second);
    EXPECT_EQ(seen.size(), 101u);
}

TEST(Distribution, SizeBalancedIsMoreEvenOnSkewedSizes)
{
    // One giant file plus many small: round-robin puts the giant on
    // one shard and also splits the rest evenly — LPT compensates.
    FileList files = makeFiles(40);
    files[0].size = 1'000'000;
    auto rr = shardLoads(distributeRoundRobin(files, 4));
    auto lpt = shardLoads(distributeSizeBalanced(files, 4));
    auto spread = [](const std::vector<std::uint64_t> &loads) {
        auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
        return *hi - *lo;
    };
    EXPECT_LE(spread(lpt), spread(rr));
}

TEST(Distribution, SizeBalancedCoversEveryFileOnce)
{
    FileList files = makeFiles(57);
    auto shards = distributeSizeBalanced(files, 5);
    std::set<DocId> seen;
    for (const FileList &shard : shards)
        for (const FileEntry &file : shard)
            EXPECT_TRUE(seen.insert(file.doc).second);
    EXPECT_EQ(seen.size(), 57u);
}

TEST(Distribution, MoreShardsThanFiles)
{
    FileList files = makeFiles(2);
    auto shards = distributeRoundRobin(files, 8);
    ASSERT_EQ(shards.size(), 8u);
    EXPECT_EQ(shards[0].size(), 1u);
    EXPECT_EQ(shards[1].size(), 1u);
    for (std::size_t s = 2; s < 8; ++s)
        EXPECT_TRUE(shards[s].empty());
}

TEST(Distribution, EmptyFileList)
{
    FileList files;
    auto shards = distributeRoundRobin(files, 3);
    for (const FileList &shard : shards)
        EXPECT_TRUE(shard.empty());
}

TEST(Distribution, StrategyNames)
{
    EXPECT_STREQ(name(DistributionKind::RoundRobin), "round-robin");
    EXPECT_STREQ(name(DistributionKind::SizeBalanced),
                 "size-balanced");
    EXPECT_STREQ(name(DistributionKind::SharedQueue), "shared-queue");
    EXPECT_STREQ(name(DistributionKind::WorkStealing),
                 "work-stealing");
}

TEST(Distribution, VectorSourceDrainsPrivateShards)
{
    FileList files = makeFiles(9);
    VectorSource source(distributeRoundRobin(files, 3));
    FileEntry out;
    // Worker 1 sees exactly files 1, 4, 7 in order.
    ASSERT_TRUE(source.next(1, out));
    EXPECT_EQ(out.doc, 1u);
    ASSERT_TRUE(source.next(1, out));
    EXPECT_EQ(out.doc, 4u);
    ASSERT_TRUE(source.next(1, out));
    EXPECT_EQ(out.doc, 7u);
    EXPECT_FALSE(source.next(1, out));
}

TEST(Distribution, SharedQueueSourceServesAllOnce)
{
    FileList files = makeFiles(20);
    SharedQueueSource source(files);
    std::set<DocId> seen;
    FileEntry out;
    while (source.next(0, out))
        EXPECT_TRUE(seen.insert(out.doc).second);
    EXPECT_EQ(seen.size(), 20u);
}

TEST(Distribution, WorkStealingDrainsEverything)
{
    FileList files = makeFiles(30);
    WorkStealingSource source(files, 3);
    std::set<DocId> seen;
    FileEntry out;
    // Worker 0 alone must be able to drain all deques via steals.
    while (source.next(0, out))
        EXPECT_TRUE(seen.insert(out.doc).second);
    EXPECT_EQ(seen.size(), 30u);
    EXPECT_GT(source.stealCount(), 0u);
}

/**
 * Property: every strategy delivers each file exactly once under
 * concurrent consumption.
 */
class FileSourceProperty
    : public ::testing::TestWithParam<DistributionKind>
{
};

TEST_P(FileSourceProperty, ConcurrentExactlyOnceDelivery)
{
    const std::size_t n_files = 5000;
    const std::size_t workers = 4;
    FileList files = makeFiles(n_files);
    auto source = makeFileSource(GetParam(), files, workers);

    std::vector<std::vector<DocId>> received(workers);
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&source, &received, w] {
            FileEntry out;
            while (source->next(w, out))
                received[w].push_back(out.doc);
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<DocId> all;
    for (const auto &chunk : received)
        all.insert(all.end(), chunk.begin(), chunk.end());
    ASSERT_EQ(all.size(), n_files);
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < n_files; ++i)
        ASSERT_EQ(all[i], static_cast<DocId>(i))
            << "file lost or duplicated under "
            << name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FileSourceProperty,
    ::testing::Values(DistributionKind::RoundRobin,
                      DistributionKind::SizeBalanced,
                      DistributionKind::SharedQueue,
                      DistributionKind::WorkStealing),
    [](const ::testing::TestParamInfo<DistributionKind> &info) {
        switch (info.param) {
          case DistributionKind::RoundRobin:
            return std::string("RoundRobin");
          case DistributionKind::SizeBalanced:
            return std::string("SizeBalanced");
          case DistributionKind::SharedQueue:
            return std::string("SharedQueue");
          case DistributionKind::WorkStealing:
            return std::string("WorkStealing");
        }
        return std::string("Unknown");
    });

TEST(DistributionDeath, ZeroShardsIsFatal)
{
    FileList files = makeFiles(3);
    EXPECT_EXIT(distributeRoundRobin(files, 0),
                ::testing::ExitedWithCode(1), "at least one shard");
    EXPECT_EXIT(distributeSizeBalanced(files, 0),
                ::testing::ExitedWithCode(1), "at least one shard");
}

} // namespace
} // namespace dsearch
