/**
 * @file
 * Unit tests for the real-disk backend (fs/disk_fs.hh), using a
 * temporary directory.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fs/disk_fs.hh"

namespace dsearch {
namespace {

namespace stdfs = std::filesystem;

class DiskFsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _root = stdfs::temp_directory_path()
                / ("dsearch_diskfs_test_"
                   + std::to_string(::getpid()));
        stdfs::create_directories(_root / "sub");
        write(_root / "a.txt", "alpha content");
        write(_root / "sub" / "b.txt", "beta");
    }

    void TearDown() override { stdfs::remove_all(_root); }

    static void
    write(const stdfs::path &path, const std::string &content)
    {
        std::ofstream out(path, std::ios::binary);
        out << content;
    }

    stdfs::path _root;
};

TEST_F(DiskFsTest, ListsRootSorted)
{
    DiskFs fs(_root.string());
    auto entries = fs.list("/");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "a.txt");
    EXPECT_FALSE(entries[0].is_dir);
    EXPECT_EQ(entries[1].name, "sub");
    EXPECT_TRUE(entries[1].is_dir);
}

TEST_F(DiskFsTest, ReadsFileContent)
{
    DiskFs fs(_root.string());
    std::string content;
    ASSERT_TRUE(fs.readFile("/a.txt", content));
    EXPECT_EQ(content, "alpha content");
    ASSERT_TRUE(fs.readFile("/sub/b.txt", content));
    EXPECT_EQ(content, "beta");
}

TEST_F(DiskFsTest, FileSizeAndTypeQueries)
{
    DiskFs fs(_root.string());
    EXPECT_TRUE(fs.isFile("/a.txt"));
    EXPECT_FALSE(fs.isDirectory("/a.txt"));
    EXPECT_TRUE(fs.isDirectory("/sub"));
    EXPECT_FALSE(fs.isFile("/sub"));
    EXPECT_EQ(fs.fileSize("/a.txt"), 13u);
}

TEST_F(DiskFsTest, MissingFileReadFails)
{
    DiskFs fs(_root.string());
    std::string content;
    EXPECT_FALSE(fs.readFile("/nope.txt", content));
    EXPECT_FALSE(fs.isFile("/nope.txt"));
    EXPECT_EQ(fs.fileSize("/nope.txt"), 0u);
}

TEST_F(DiskFsTest, EmptyFileReads)
{
    write(_root / "empty.txt", "");
    DiskFs fs(_root.string());
    std::string content = "sentinel";
    ASSERT_TRUE(fs.readFile("/empty.txt", content));
    EXPECT_TRUE(content.empty());
}

TEST_F(DiskFsTest, BinaryContentRoundTrips)
{
    std::string binary("\x00\x01\xFF\x7F bin", 8);
    write(_root / "bin.dat", binary);
    DiskFs fs(_root.string());
    std::string content;
    ASSERT_TRUE(fs.readFile("/bin.dat", content));
    EXPECT_EQ(content, binary);
}

TEST_F(DiskFsTest, TrailingSlashRootNormalized)
{
    DiskFs fs(_root.string() + "/");
    EXPECT_TRUE(fs.isFile("/a.txt"));
}

TEST(DiskFsDeath, MissingRootIsFatal)
{
    EXPECT_EXIT(DiskFs("/definitely/not/a/real/path/xyz"),
                ::testing::ExitedWithCode(1), "not a directory");
}

} // namespace
} // namespace dsearch
