/**
 * @file
 * Unit tests for the reusable barrier (pipeline/barrier.hh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pipeline/barrier.hh"

namespace dsearch {
namespace {

TEST(Barrier, SinglePartyNeverBlocks)
{
    Barrier barrier(1);
    for (int i = 0; i < 5; ++i)
        barrier.arriveAndWait();
    SUCCEED();
}

TEST(Barrier, AllThreadsPassTogether)
{
    const int parties = 4;
    Barrier barrier(parties);
    std::atomic<int> before{0}, after{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < parties; ++t) {
        threads.emplace_back([&] {
            ++before;
            barrier.arriveAndWait();
            // Every thread must observe all arrivals.
            EXPECT_EQ(before.load(), parties);
            ++after;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(after.load(), parties);
}

TEST(Barrier, ReusableAcrossGenerations)
{
    const int parties = 3;
    const int rounds = 50;
    Barrier barrier(parties);
    std::atomic<int> phase_sum{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < parties; ++t) {
        threads.emplace_back([&] {
            for (int round = 0; round < rounds; ++round) {
                ++phase_sum;
                barrier.arriveAndWait();
                // Between barriers the sum is a full multiple.
                EXPECT_EQ(phase_sum.load() % parties, 0);
                barrier.arriveAndWait();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(phase_sum.load(), parties * rounds);
}

TEST(BarrierDeath, ZeroPartiesIsFatal)
{
    EXPECT_EXIT(Barrier(0), ::testing::ExitedWithCode(1),
                "at least one party");
}

} // namespace
} // namespace dsearch
