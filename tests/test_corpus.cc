/**
 * @file
 * Unit tests for the synthetic corpus generator (fs/corpus.hh).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "fs/corpus.hh"
#include "fs/traversal.hh"

namespace dsearch {
namespace {

TEST(CorpusSpec, TinyValidates)
{
    CorpusSpec::tiny().validate();
    SUCCEED();
}

TEST(CorpusSpec, PaperShape)
{
    CorpusSpec spec = CorpusSpec::paper();
    EXPECT_EQ(spec.file_count, 51000u);
    EXPECT_EQ(spec.total_bytes, 869ull << 20);
    EXPECT_EQ(spec.large_file_count, 5u);
    spec.validate();
}

TEST(CorpusSpec, PaperScaledKeepsShape)
{
    CorpusSpec spec = CorpusSpec::paperScaled(0.1);
    EXPECT_NEAR(static_cast<double>(spec.file_count), 5100.0, 1.0);
    EXPECT_EQ(spec.large_file_count, 5u);
    spec.validate();
}

TEST(CorpusSpecDeath, InvalidSpecsAreFatal)
{
    CorpusSpec spec = CorpusSpec::tiny();
    spec.file_count = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1), "");

    spec = CorpusSpec::tiny();
    spec.large_file_count = spec.file_count;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1), "");

    spec = CorpusSpec::tiny();
    spec.large_file_share = 1.5;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1), "");

    spec = CorpusSpec::tiny();
    spec.root = "no-slash";
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1), "");
}

TEST(CorpusWords, UniquePerRank)
{
    std::set<std::string> words;
    for (std::size_t r = 0; r < 30000; ++r) {
        auto [it, fresh] =
            words.insert(CorpusGenerator::wordForRank(r));
        ASSERT_TRUE(fresh) << "collision at rank " << r << ": " << *it;
    }
}

TEST(CorpusWords, FrequentRanksAreShort)
{
    EXPECT_EQ(CorpusGenerator::wordForRank(0).size(), 2u);
    EXPECT_EQ(CorpusGenerator::wordForRank(84).size(), 2u);
    EXPECT_EQ(CorpusGenerator::wordForRank(85).size(), 4u);
    EXPECT_LE(CorpusGenerator::wordForRank(200000).size(), 6u);
}

TEST(CorpusWords, OnlyLowercaseLetters)
{
    for (std::size_t r : {0u, 10u, 1000u, 50000u}) {
        for (char c : CorpusGenerator::wordForRank(r)) {
            ASSERT_GE(c, 'a');
            ASSERT_LE(c, 'z');
        }
    }
}

TEST(Corpus, ManifestMatchesSpec)
{
    CorpusSpec spec = CorpusSpec::tiny();
    CorpusGenerator generator(spec);
    MemoryFs fs;
    MemoryFsWriter writer(fs);
    CorpusManifest manifest = generator.generate(writer);

    EXPECT_EQ(manifest.file_count, spec.file_count);
    EXPECT_EQ(fs.fileCount(), spec.file_count);
    EXPECT_EQ(manifest.large_files.size(), spec.large_file_count);
    // Total bytes within 20% of the target (clamping skews small
    // corpora slightly).
    double ratio = static_cast<double>(manifest.total_bytes)
                   / static_cast<double>(spec.total_bytes);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

TEST(Corpus, DeterministicAcrossRuns)
{
    CorpusGenerator generator(CorpusSpec::tiny(77));
    auto fs1 = generator.generateInMemory();
    auto fs2 = generator.generateInMemory();

    FileList files1 = generateFilenames(*fs1, "/");
    FileList files2 = generateFilenames(*fs2, "/");
    ASSERT_EQ(files1.size(), files2.size());
    for (std::size_t i = 0; i < files1.size(); ++i) {
        ASSERT_EQ(files1[i].path, files2[i].path);
        std::string c1, c2;
        ASSERT_TRUE(fs1->readFile(files1[i].path, c1));
        ASSERT_TRUE(fs2->readFile(files2[i].path, c2));
        ASSERT_EQ(c1, c2) << "content differs: " << files1[i].path;
    }
}

TEST(Corpus, DifferentSeedsDiffer)
{
    auto fs1 = CorpusGenerator(CorpusSpec::tiny(1)).generateInMemory();
    auto fs2 = CorpusGenerator(CorpusSpec::tiny(2)).generateInMemory();
    FileList files1 = generateFilenames(*fs1, "/");
    FileList files2 = generateFilenames(*fs2, "/");
    bool any_difference = files1.size() != files2.size();
    for (std::size_t i = 0;
         !any_difference && i < std::min(files1.size(), files2.size());
         ++i) {
        std::string c1, c2;
        fs1->readFile(files1[i].path, c1);
        fs2->readFile(files2[i].path, c2);
        any_difference = c1 != c2 || files1[i].path != files2[i].path;
    }
    EXPECT_TRUE(any_difference);
}

TEST(Corpus, LargeFilesAreActuallyLarge)
{
    CorpusSpec spec = CorpusSpec::tiny();
    CorpusGenerator generator(spec);
    MemoryFs fs;
    MemoryFsWriter writer(fs);
    CorpusManifest manifest = generator.generate(writer);

    std::uint64_t mean = manifest.total_bytes / manifest.file_count;
    for (const std::string &path : manifest.large_files) {
        EXPECT_GT(fs.fileSize(path), mean * 5)
            << "large file not large: " << path;
    }
}

TEST(Corpus, FileSizesSumCloseToTarget)
{
    CorpusSpec spec = CorpusSpec::tiny();
    CorpusGenerator generator(spec);
    std::vector<std::uint64_t> sizes = generator.fileSizes();
    ASSERT_EQ(sizes.size(), spec.file_count);
    std::uint64_t total = 0;
    for (std::uint64_t s : sizes)
        total += s;
    double ratio = static_cast<double>(total)
                   / static_cast<double>(spec.total_bytes);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

TEST(Corpus, TextLooksLikeWords)
{
    CorpusGenerator generator(CorpusSpec::tiny());
    auto fs = generator.generateInMemory();
    FileList files = generateFilenames(*fs, "/");
    ASSERT_FALSE(files.empty());
    std::string content;
    ASSERT_TRUE(fs->readFile(files[0].path, content));
    ASSERT_FALSE(content.empty());
    // Only lowercase letters, digits, spaces and newlines.
    for (char c : content) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
                  || c == ' ' || c == '\n';
        ASSERT_TRUE(ok) << "unexpected byte "
                        << static_cast<int>(c);
    }
}

TEST(Corpus, DirectoryTreeIsUsed)
{
    CorpusGenerator generator(CorpusSpec::tiny());
    auto fs = generator.generateInMemory();
    // Root must contain subdirectories, not a flat pile of files.
    auto entries = fs->list("/corpus");
    bool has_dir = false;
    for (const DirEntry &entry : entries)
        has_dir |= entry.is_dir;
    EXPECT_TRUE(has_dir);
}

TEST(Corpus, DiskWriterRoundTrip)
{
    namespace stdfs = std::filesystem;
    stdfs::path root =
        stdfs::temp_directory_path()
        / ("dsearch_corpus_test_" + std::to_string(::getpid()));

    CorpusSpec spec = CorpusSpec::tiny();
    spec.file_count = 30;
    spec.total_bytes = 30 << 10;
    spec.large_file_count = 1;
    CorpusGenerator generator(spec);

    DiskWriter writer(root.string());
    CorpusManifest manifest = generator.generate(writer);
    EXPECT_EQ(manifest.file_count, 30u);

    // The same corpus in memory must match the disk copy.
    auto mem = generator.generateInMemory();
    std::size_t checked = 0;
    FileList files = generateFilenames(*mem, "/");
    for (const FileEntry &file : files) {
        stdfs::path on_disk = root / file.path.substr(1);
        ASSERT_TRUE(stdfs::exists(on_disk)) << on_disk;
        EXPECT_EQ(stdfs::file_size(on_disk), file.size);
        ++checked;
    }
    EXPECT_EQ(checked, 30u);
    stdfs::remove_all(root);
}

} // namespace
} // namespace dsearch
