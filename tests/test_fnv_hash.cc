/**
 * @file
 * Unit tests for the FNV hash functions (util/fnv_hash.hh).
 *
 * Reference values are the published FNV test vectors from Noll's
 * page (the paper's reference [3]).
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "util/fnv_hash.hh"

namespace dsearch {
namespace {

TEST(FnvHash, Fnv1a32KnownVectors)
{
    // Published vectors for FNV-1a 32-bit.
    EXPECT_EQ(fnv1a_32(""), 0x811c9dc5u);
    EXPECT_EQ(fnv1a_32("a"), 0xe40c292cu);
    EXPECT_EQ(fnv1a_32("foobar"), 0xbf9cf968u);
}

TEST(FnvHash, Fnv1_32KnownVectors)
{
    // Published vectors for historic FNV-1 32-bit.
    EXPECT_EQ(fnv1_32(""), 0x811c9dc5u);
    EXPECT_EQ(fnv1_32("a"), 0x050c5d7eu);
    EXPECT_EQ(fnv1_32("foobar"), 0x31f0b262u);
}

TEST(FnvHash, Fnv1a64KnownVectors)
{
    EXPECT_EQ(fnv1a_64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a_64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a_64("foobar"), 0x85944171f73967e8ull);
}

TEST(FnvHash, Fnv1_64KnownVectors)
{
    EXPECT_EQ(fnv1_64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1_64("a"), 0xaf63bd4c8601b7beull);
    EXPECT_EQ(fnv1_64("foobar"), 0x340d8765a4dda9c2ull);
}

TEST(FnvHash, VariantsDiffer)
{
    EXPECT_NE(fnv1_32("hello"), fnv1a_32("hello"));
    EXPECT_NE(fnv1_64("hello"), fnv1a_64("hello"));
}

TEST(FnvHash, ConstexprUsable)
{
    constexpr std::uint32_t h = fnv1a_32("compile-time");
    static_assert(h != 0, "constexpr evaluation must work");
    EXPECT_EQ(h, fnv1a_32(std::string_view("compile-time")));
}

TEST(FnvHash, ByteRangeMatchesStringView)
{
    const char data[] = {'a', 'b', 'c'};
    EXPECT_EQ(fnv1a_64(data, 3), fnv1a_64(std::string_view("abc")));
}

TEST(FnvHash, FunctorOnStrings)
{
    FnvHash<std::string> hasher;
    EXPECT_EQ(hasher(std::string("term")),
              static_cast<std::size_t>(fnv1a_64("term")));
}

TEST(FnvHash, FunctorOnIntegers)
{
    FnvHash<int> hasher;
    EXPECT_NE(hasher(1), hasher(2));
    EXPECT_EQ(hasher(42), hasher(42));
}

TEST(FnvHash, EmbeddedNulBytesHashDistinctly)
{
    std::string a("a\0b", 3);
    std::string b("a\0c", 3);
    EXPECT_NE(fnv1a_64(a), fnv1a_64(b));
}

TEST(FnvHash, LowCollisionRateOnWordLikeKeys)
{
    std::unordered_set<std::uint64_t> hashes;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hashes.insert(fnv1a_64("word" + std::to_string(i)));
    // 64-bit FNV-1a should not collide at this scale.
    EXPECT_EQ(hashes.size(), static_cast<std::size_t>(n));
}

TEST(FnvHash, PrefixSensitivity)
{
    EXPECT_NE(fnv1a_64("abcd"), fnv1a_64("abce"));
    EXPECT_NE(fnv1a_64("abcd"), fnv1a_64("bbcd"));
    EXPECT_NE(fnv1a_64("ab"), fnv1a_64("abab"));
}

} // namespace
} // namespace dsearch
