/**
 * @file
 * Property tests for boolean query evaluation against a brute-force
 * oracle, plus algebraic laws (De Morgan, double negation,
 * commutativity, absorption) checked on randomly generated queries
 * over randomly generated indices.
 *
 * The oracle evaluates the query per document by set membership —
 * an independent implementation of the semantics the posting-list
 * algebra in search/searcher.cc must match.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "search/searcher.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

constexpr std::size_t vocab = 8;
constexpr std::size_t doc_count = 64;

std::string
word(std::size_t v)
{
    return "w" + std::to_string(v);
}

/** Random index: each doc gets a random subset of the vocabulary. */
struct Fixture
{
    IndexSnapshot snapshot;
    std::vector<std::set<std::string>> doc_terms;

    explicit
    Fixture(std::uint64_t seed)
        : doc_terms(doc_count)
    {
        Rng rng(seed);
        InvertedIndex index;
        for (DocId doc = 0; doc < doc_count; ++doc) {
            TermBlock block;
            block.doc = doc;
            for (std::size_t v = 0; v < vocab; ++v) {
                if (rng.bernoulli(0.4)) {
                    block.addTerm(word(v));
                    doc_terms[doc].insert(word(v));
                }
            }
            index.addBlock(block);
        }
        snapshot = IndexSnapshot::seal(std::move(index));
    }
};

/** Brute-force per-document evaluation. */
bool
oracleMatches(const QueryNode &node,
              const std::set<std::string> &terms)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        return terms.count(node.term) > 0;
      case QueryNode::Kind::And:
        for (const QueryNode &child : node.children)
            if (!oracleMatches(child, terms))
                return false;
        return true;
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            if (oracleMatches(child, terms))
                return true;
        return false;
      case QueryNode::Kind::Not:
        return !oracleMatches(node.children.front(), terms);
    }
    return false;
}

DocSet
oracleRun(const Fixture &fixture, const Query &query)
{
    DocSet out;
    for (DocId doc = 0; doc < doc_count; ++doc)
        if (oracleMatches(query.root(), fixture.doc_terms[doc]))
            out.push_back(doc);
    return out;
}

/** Random query text of bounded depth. */
std::string
randomQuery(Rng &rng, int depth)
{
    if (depth <= 0 || rng.bernoulli(0.4))
        return word(rng.uniform(0, vocab)); // vocab index may miss
    switch (rng.uniform(0, 2)) {
      case 0:
        return "(" + randomQuery(rng, depth - 1) + " AND "
               + randomQuery(rng, depth - 1) + ")";
      case 1:
        return "(" + randomQuery(rng, depth - 1) + " OR "
               + randomQuery(rng, depth - 1) + ")";
      default:
        return "(NOT " + randomQuery(rng, depth - 1) + ")";
    }
}

class QueryAlgebra : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueryAlgebra, SearcherMatchesBruteForceOracle)
{
    Fixture fixture(GetParam());
    Searcher searcher(fixture.snapshot, doc_count);
    Rng rng(GetParam() * 31 + 7);
    for (int i = 0; i < 60; ++i) {
        std::string text = randomQuery(rng, 3);
        Query query = Query::parse(text);
        ASSERT_TRUE(query.valid()) << text;
        ASSERT_EQ(searcher.run(query), oracleRun(fixture, query))
            << "oracle mismatch for: " << text;
    }
}

TEST_P(QueryAlgebra, DeMorganLaws)
{
    Fixture fixture(GetParam());
    Searcher searcher(fixture.snapshot, doc_count);
    Rng rng(GetParam() * 17 + 3);
    for (int i = 0; i < 30; ++i) {
        std::string a = randomQuery(rng, 2);
        std::string b = randomQuery(rng, 2);
        Query lhs_and =
            Query::parse("NOT (" + a + " AND " + b + ")");
        Query rhs_and =
            Query::parse("(NOT " + a + ") OR (NOT " + b + ")");
        ASSERT_EQ(searcher.run(lhs_and), searcher.run(rhs_and))
            << "De Morgan (AND) failed: " << a << " / " << b;

        Query lhs_or = Query::parse("NOT (" + a + " OR " + b + ")");
        Query rhs_or =
            Query::parse("(NOT " + a + ") AND (NOT " + b + ")");
        ASSERT_EQ(searcher.run(lhs_or), searcher.run(rhs_or))
            << "De Morgan (OR) failed: " << a << " / " << b;
    }
}

TEST_P(QueryAlgebra, DoubleNegationIsIdentity)
{
    Fixture fixture(GetParam());
    Searcher searcher(fixture.snapshot, doc_count);
    Rng rng(GetParam() * 13 + 1);
    for (int i = 0; i < 30; ++i) {
        std::string a = randomQuery(rng, 2);
        ASSERT_EQ(searcher.run(Query::parse("NOT NOT " + a)),
                  searcher.run(Query::parse(a)))
            << a;
    }
}

TEST_P(QueryAlgebra, CommutativityAndIdempotence)
{
    Fixture fixture(GetParam());
    Searcher searcher(fixture.snapshot, doc_count);
    Rng rng(GetParam() * 11 + 5);
    for (int i = 0; i < 30; ++i) {
        std::string a = randomQuery(rng, 2);
        std::string b = randomQuery(rng, 2);
        ASSERT_EQ(
            searcher.run(Query::parse("(" + a + " AND " + b + ")")),
            searcher.run(Query::parse("(" + b + " AND " + a + ")")));
        ASSERT_EQ(
            searcher.run(Query::parse("(" + a + " OR " + b + ")")),
            searcher.run(Query::parse("(" + b + " OR " + a + ")")));
        ASSERT_EQ(
            searcher.run(Query::parse("(" + a + " AND " + a + ")")),
            searcher.run(Query::parse(a)));
        ASSERT_EQ(
            searcher.run(Query::parse("(" + a + " OR " + a + ")")),
            searcher.run(Query::parse(a)));
    }
}

TEST_P(QueryAlgebra, AbsorptionAndComplement)
{
    Fixture fixture(GetParam());
    Searcher searcher(fixture.snapshot, doc_count);
    Rng rng(GetParam() * 7 + 11);
    for (int i = 0; i < 30; ++i) {
        std::string a = randomQuery(rng, 2);
        std::string b = randomQuery(rng, 2);
        // a AND (a OR b) == a
        ASSERT_EQ(searcher.run(Query::parse(
                      "(" + a + " AND (" + a + " OR " + b + "))")),
                  searcher.run(Query::parse(a)));
        // a AND NOT a == empty
        ASSERT_TRUE(searcher
                        .run(Query::parse("(" + a + " AND NOT " + a
                                          + ")"))
                        .empty());
        // a OR NOT a == universe
        ASSERT_EQ(searcher
                      .run(Query::parse("(" + a + " OR NOT " + a
                                        + ")"))
                      .size(),
                  doc_count);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryAlgebra,
                         ::testing::Values(1, 2, 3, 42, 2010));

} // namespace
} // namespace dsearch
