/**
 * @file
 * End-to-end integration tests: corpus -> build -> (serialize) ->
 * search, across storage backends and generator organizations.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "dsearch.hh"

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "fs/disk_fs.hh"
#include "index/serialize.hh"
#include "search/multi_searcher.hh"
#include "search/searcher.hh"
#include "tune/tuner.hh"

namespace dsearch {
namespace {

TEST(Integration, BuildAndSearchInMemory)
{
    MemoryFs fs;
    fs.addFile("/docs/report.txt",
               "quarterly revenue grew while costs fell");
    fs.addFile("/docs/memo.txt", "revenue targets for the quarter");
    fs.addFile("/docs/notes.txt", "lunch menu and parking costs");

    Engine::Result result = Engine::open(fs, "/docs")
                                .organization(
                                    Implementation::SharedLocked)
                                .threads(2, 1)
                                .build();
    Searcher searcher(result.snapshot, result.docs.docCount());

    DocSet hits = searcher.run(Query::parse("revenue"));
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(result.docs.path(hits[0]), "/docs/memo.txt");
    EXPECT_EQ(result.docs.path(hits[1]), "/docs/report.txt");

    hits = searcher.run(Query::parse("costs AND NOT revenue"));
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(result.docs.path(hits[0]), "/docs/notes.txt");
}

TEST(Integration, BuildSerializeReloadSearch)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(55)).generateInMemory();
    Engine::Result result =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(3, 2, 1)
            .build();

    std::string path = "/tmp/dsearch_integration_"
                       + std::to_string(::getpid()) + ".idx";
    ASSERT_TRUE(
        saveSnapshotFile(result.snapshot, result.docs, path));

    IndexSnapshot loaded;
    DocTable docs;
    ASSERT_TRUE(loadSnapshotFile(loaded, docs, path));
    std::remove(path.c_str());

    ASSERT_EQ(docs.docCount(), result.docs.docCount());
    Searcher before(result.snapshot, result.docs.docCount());
    Searcher after(loaded, docs.docCount());
    for (const char *text : {"ba", "be OR bi", "NOT ba", "ba AND bi"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(before.run(q), after.run(q)) << text;
    }
}

TEST(Integration, DiskBackendEndToEnd)
{
    namespace stdfs = std::filesystem;
    stdfs::path root =
        stdfs::temp_directory_path()
        / ("dsearch_integration_" + std::to_string(::getpid()));

    CorpusSpec spec = CorpusSpec::tiny(77);
    spec.file_count = 60;
    spec.total_bytes = 60 << 10;
    spec.large_file_count = 1;
    CorpusGenerator corpus(spec);
    DiskWriter writer(root.string());
    corpus.generate(writer);

    DiskFs disk(root.string());
    Engine::Result result =
        Engine::open(disk, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(2, 2)
            .build();
    EXPECT_EQ(result.docs.docCount(), 60u);

    // The same corpus indexed in memory must agree.
    auto mem = corpus.generateInMemory();
    Engine::Result mem_result = Engine::open(*mem, "/").build();

    MultiSearcher disk_search(result.snapshot,
                              result.docs.docCount());
    Searcher mem_search(mem_result.snapshot,
                        mem_result.docs.docCount());
    for (const char *text : {"ba", "bi AND bo", "NOT ba"}) {
        Query q = Query::parse(text);
        EXPECT_EQ(disk_search.run(q, 2), mem_search.run(q)) << text;
    }
    stdfs::remove_all(root);
}

TEST(Integration, TuneThenBuildWithBestConfig)
{
    // Tune on the simulator, then run the real generator with the
    // winning configuration — the workflow the paper's process
    // recommends (measure, explore, then build).
    PipelineSim sim(PlatformSpec::host(4),
                    WorkloadModel::fromCorpusSpec(
                        CorpusSpec::paperScaled(0.01)));
    SimCostEvaluator evaluator(sim);
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedNoJoin, 4, 2, 0);
    TuneResult tuned = ExhaustiveTuner().tune(evaluator, space);

    auto fs = CorpusGenerator(CorpusSpec::tiny(99)).generateInMemory();
    Engine::Result result =
        Engine::open(*fs, "/").config(tuned.best).build();
    EXPECT_EQ(result.docs.docCount(),
              CorpusSpec::tiny(99).file_count);
    EXPECT_GE(result.snapshot.segmentCount(), 1u);
}

TEST(Integration, SearchAcrossAllImplementationsAgrees)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(13)).generateInMemory();
    std::size_t docs = 0;
    std::vector<DocSet> answers;
    Query query = Query::parse("(ba OR be) AND NOT bi");

    for (Config cfg :
         {Config::sequential(), Config::sharedLocked(3, 1),
          Config::replicatedJoin(3, 2, 1),
          Config::replicatedNoJoin(3, 2)}) {
        Engine::Result result =
            Engine::open(*fs, "/").config(cfg).build();
        docs = result.docs.docCount();
        if (result.snapshot.unified()) {
            Searcher searcher(result.snapshot, docs);
            answers.push_back(searcher.run(query));
        } else {
            MultiSearcher searcher(result.snapshot, docs);
            answers.push_back(searcher.run(query, 2));
        }
    }
    for (std::size_t i = 1; i < answers.size(); ++i)
        EXPECT_EQ(answers[i], answers[0])
            << "implementation " << i << " disagrees";
    EXPECT_FALSE(answers[0].empty());
}

TEST(Integration, UmbrellaHeaderCompiles)
{
    // The umbrella header must pull in every public subsystem; this
    // test exists so a missing include breaks the build, not a user.
    SUCCEED();
}

TEST(Integration, MediumCorpusAllImplementationsAgree)
{
    // Larger-than-unit-test corpus: 510 files, ~8.7 MiB — enough for
    // real thread interleaving inside every organization.
    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.01))
                  .generateInMemory();

    IndexGenerator sequential(*fs, "/", Config::sequential());
    InvertedIndex reference =
        std::move(sequential.build().indices.front());
    reference.sortPostings();
    ASSERT_GT(reference.postingCount(), 100000u);

    Config sharded = Config::sharedLocked(4, 2);
    sharded.lock_shards = 8;
    for (Config cfg :
         {Config::sharedLocked(4, 2), sharded,
          Config::replicatedJoin(4, 3, 2),
          Config::replicatedNoJoin(4, 2)}) {
        IndexGenerator generator(*fs, "/", cfg);
        BuildResult result = generator.build();
        InvertedIndex merged =
            joinSequential(std::move(result.indices));
        merged.sortPostings();
        ASSERT_TRUE(sameContents(merged, reference))
            << cfg.describe();
    }
}

TEST(Integration, WarningsDoNotBreakBuilds)
{
    // A file that vanishes between Stage 1 and Stage 2 (simulated by
    // a dangling entry) must be skipped, not crash the build.
    MemoryFs fs;
    fs.addFile("/a.txt", "alpha beta");
    FileList files = generateFilenames(fs, "/");
    files.push_back(FileEntry{1, "/ghost.txt", 10});

    setLogLevel(LogLevel::Silent);
    TermExtractor extractor(fs);
    TermBlock block;
    EXPECT_TRUE(extractor.extract(files[0], block));
    EXPECT_FALSE(extractor.extract(files[1], block));
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(extractor.stats().read_errors, 1u);
}

} // namespace
} // namespace dsearch
