/**
 * @file
 * Unit tests for the term scanner (text/tokenizer.hh).
 */

#include <gtest/gtest.h>

#include "text/tokenizer.hh"

namespace dsearch {
namespace {

TEST(Tokenizer, SplitsOnNonTermCharacters)
{
    Tokenizer tok;
    auto terms = tok.tokens("hello, world! foo-bar");
    ASSERT_EQ(terms.size(), 4u);
    EXPECT_EQ(terms[0], "hello");
    EXPECT_EQ(terms[1], "world");
    EXPECT_EQ(terms[2], "foo");
    EXPECT_EQ(terms[3], "bar");
}

TEST(Tokenizer, FoldsCaseByDefault)
{
    Tokenizer tok;
    auto terms = tok.tokens("Hello WORLD MiXeD");
    ASSERT_EQ(terms.size(), 3u);
    EXPECT_EQ(terms[0], "hello");
    EXPECT_EQ(terms[1], "world");
    EXPECT_EQ(terms[2], "mixed");
}

TEST(Tokenizer, CaseFoldingCanBeDisabled)
{
    TokenizerOptions opts;
    opts.fold_case = false;
    Tokenizer tok(opts);
    auto terms = tok.tokens("Hello");
    ASSERT_EQ(terms.size(), 1u);
    EXPECT_EQ(terms[0], "Hello");
}

TEST(Tokenizer, DigitsIncludedByDefault)
{
    Tokenizer tok;
    auto terms = tok.tokens("version 42 x86 2010");
    ASSERT_EQ(terms.size(), 4u);
    EXPECT_EQ(terms[1], "42");
    EXPECT_EQ(terms[2], "x86");
}

TEST(Tokenizer, DigitsCanSplitTerms)
{
    TokenizerOptions opts;
    opts.include_digits = false;
    Tokenizer tok(opts);
    auto terms = tok.tokens("x86 foo2bar");
    ASSERT_EQ(terms.size(), 3u);
    EXPECT_EQ(terms[0], "x");
    EXPECT_EQ(terms[1], "foo");
    EXPECT_EQ(terms[2], "bar");
}

TEST(Tokenizer, MinLengthFilters)
{
    TokenizerOptions opts;
    opts.min_length = 3;
    Tokenizer tok(opts);
    auto terms = tok.tokens("a bb ccc dddd");
    ASSERT_EQ(terms.size(), 2u);
    EXPECT_EQ(terms[0], "ccc");
    EXPECT_EQ(terms[1], "dddd");
}

TEST(Tokenizer, MaxLengthTruncates)
{
    TokenizerOptions opts;
    opts.max_length = 4;
    Tokenizer tok(opts);
    auto terms = tok.tokens("abcdefgh xy");
    ASSERT_EQ(terms.size(), 2u);
    EXPECT_EQ(terms[0], "abcd");
    EXPECT_EQ(terms[1], "xy");
}

TEST(Tokenizer, EmptyAndSeparatorOnlyInputs)
{
    Tokenizer tok;
    EXPECT_TRUE(tok.tokens("").empty());
    EXPECT_TRUE(tok.tokens("  \n\t ,.;!").empty());
}

TEST(Tokenizer, SingleTokenNoSeparators)
{
    Tokenizer tok;
    auto terms = tok.tokens("lonely");
    ASSERT_EQ(terms.size(), 1u);
    EXPECT_EQ(terms[0], "lonely");
}

TEST(Tokenizer, LeadingAndTrailingSeparators)
{
    Tokenizer tok;
    auto terms = tok.tokens("...start middle end...");
    ASSERT_EQ(terms.size(), 3u);
    EXPECT_EQ(terms[0], "start");
    EXPECT_EQ(terms[2], "end");
}

TEST(Tokenizer, NonAsciiBytesAreSeparators)
{
    Tokenizer tok;
    std::string text = "caf\xC3\xA9 men\xC3\xBC end";
    auto terms = tok.tokens(text);
    // UTF-8 multibyte sequences act as separators (ASCII-only index).
    ASSERT_EQ(terms.size(), 3u);
    EXPECT_EQ(terms[0], "caf");
    EXPECT_EQ(terms[1], "men");
    EXPECT_EQ(terms[2], "end");
}

TEST(Tokenizer, CallbackViewIsStablePerToken)
{
    Tokenizer tok;
    std::vector<std::string> collected;
    tok.forEachToken("One Two", [&](std::string_view term) {
        collected.emplace_back(term);
    });
    ASSERT_EQ(collected.size(), 2u);
    EXPECT_EQ(collected[0], "one");
    EXPECT_EQ(collected[1], "two");
}

TEST(Tokenizer, CountMatchesOnLargeInput)
{
    Tokenizer tok;
    std::string text;
    for (int i = 0; i < 1000; ++i)
        text += "word" + std::to_string(i) + " ";
    std::size_t count = 0;
    tok.forEachToken(text, [&count](std::string_view) { ++count; });
    EXPECT_EQ(count, 1000u);
}

TEST(Tokenizer, ReusableAcrossCalls)
{
    Tokenizer tok;
    EXPECT_EQ(tok.tokens("first call").size(), 2u);
    EXPECT_EQ(tok.tokens("second").size(), 1u);
    EXPECT_EQ(tok.tokens("").size(), 0u);
}

} // namespace
} // namespace dsearch
