/**
 * @file
 * Unit and property tests for the "Join Forces" pattern
 * (index/index_join.hh).
 */

#include <gtest/gtest.h>

#include "index/index_join.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/** r replicas over n docs; doc i lives in replica i % r. */
std::vector<InvertedIndex>
makeReplicas(std::size_t r, std::size_t n_docs)
{
    std::vector<InvertedIndex> replicas(r);
    for (DocId doc = 0; doc < n_docs; ++doc) {
        std::vector<std::string> terms;
        for (int t = 0; t < 6; ++t)
            terms.push_back("w" + std::to_string((doc * 13 + t) % 80));
        std::sort(terms.begin(), terms.end());
        terms.erase(std::unique(terms.begin(), terms.end()),
                    terms.end());
        replicas[doc % r].addBlock(block(doc, std::move(terms)));
    }
    return replicas;
}

InvertedIndex
referenceIndex(std::size_t n_docs)
{
    auto replicas = makeReplicas(1, n_docs);
    InvertedIndex index = std::move(replicas.front());
    index.sortPostings();
    return index;
}

TEST(IndexJoin, SequentialJoinMatchesReference)
{
    InvertedIndex joined = joinSequential(makeReplicas(4, 200));
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, referenceIndex(200)));
}

TEST(IndexJoin, EmptyReplicaList)
{
    InvertedIndex joined = joinSequential({});
    EXPECT_TRUE(joined.empty());
}

TEST(IndexJoin, SingleReplicaPassesThrough)
{
    InvertedIndex joined = joinSequential(makeReplicas(1, 50));
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, referenceIndex(50)));
}

TEST(IndexJoin, ReplicasWithEmptyMembers)
{
    // More replicas than docs: some replicas are empty.
    InvertedIndex joined = joinSequential(makeReplicas(10, 4));
    joined.sortPostings();
    EXPECT_TRUE(sameContents(joined, referenceIndex(4)));
}

TEST(IndexJoin, PostingCountPreserved)
{
    auto replicas = makeReplicas(5, 300);
    std::uint64_t total = 0;
    for (const InvertedIndex &replica : replicas)
        total += replica.postingCount();
    InvertedIndex joined = joinSequential(std::move(replicas));
    EXPECT_EQ(joined.postingCount(), total);
}

/** Property: parallel join == sequential join for any z. */
class ParallelJoinProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ParallelJoinProperty, MatchesSequentialJoin)
{
    auto [replica_count, joiners] = GetParam();
    InvertedIndex parallel = joinParallel(
        makeReplicas(replica_count, 240),
        static_cast<std::size_t>(joiners));
    parallel.sortPostings();
    EXPECT_TRUE(sameContents(parallel, referenceIndex(240)));
}

INSTANTIATE_TEST_SUITE_P(
    ReplicaAndJoinerSweep, ParallelJoinProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 4)));

TEST(IndexJoinDeath, ZeroJoinersIsFatal)
{
    EXPECT_EXIT(joinParallel(makeReplicas(2, 10), 0),
                ::testing::ExitedWithCode(1), "at least one joiner");
}

} // namespace
} // namespace dsearch
