/**
 * @file
 * Unit tests for ranked retrieval (search/ranked.hh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "search/ranked.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/**
 * Fixture: 4 docs of equal size.
 *   0: common rare      2: common
 *   1: common           3: common rare other
 */
class RankedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int d = 0; d < 4; ++d)
            _docs.add("/f" + std::to_string(d), 1000);
        _index.addBlock(block(0, {"common", "rare"}));
        _index.addBlock(block(1, {"common"}));
        _index.addBlock(block(2, {"common"}));
        _index.addBlock(block(3, {"common", "rare", "other"}));
        _snapshot = IndexSnapshot::seal(std::move(_index));
        _ranked = std::make_unique<RankedSearcher>(_snapshot, _docs);
    }

    InvertedIndex _index;
    IndexSnapshot _snapshot;
    DocTable _docs;
    std::unique_ptr<RankedSearcher> _ranked;
};

TEST_F(RankedTest, RareTermsScoreHigher)
{
    auto hits = _ranked->topK(Query::parse("common OR rare"), 10);
    ASSERT_EQ(hits.size(), 4u);
    // Docs containing the rare term outrank common-only docs.
    EXPECT_TRUE(hits[0].doc == 0 || hits[0].doc == 3);
    EXPECT_TRUE(hits[1].doc == 0 || hits[1].doc == 3);
    EXPECT_GT(hits[1].score, hits[2].score);
}

TEST_F(RankedTest, KTruncates)
{
    auto hits = _ranked->topK(Query::parse("common"), 2);
    EXPECT_EQ(hits.size(), 2u);
    EXPECT_TRUE(_ranked->topK(Query::parse("common"), 0).empty());
}

TEST_F(RankedTest, ScoresDescendTiesByDocId)
{
    auto hits = _ranked->topK(Query::parse("common"), 10);
    ASSERT_EQ(hits.size(), 4u);
    for (std::size_t i = 1; i < hits.size(); ++i) {
        EXPECT_TRUE(hits[i - 1].score > hits[i].score
                    || (hits[i - 1].score == hits[i].score
                        && hits[i - 1].doc < hits[i].doc));
    }
    // Docs 1 and 2 have identical content and size: tie by id.
    auto only_common = _ranked->topK(Query::parse("common"), 10);
    std::size_t pos1 = 99, pos2 = 99;
    for (std::size_t i = 0; i < only_common.size(); ++i) {
        if (only_common[i].doc == 1)
            pos1 = i;
        if (only_common[i].doc == 2)
            pos2 = i;
    }
    EXPECT_LT(pos1, pos2);
}

TEST_F(RankedTest, MatchSetEqualsBooleanSearch)
{
    Searcher boolean(_snapshot, _docs.docCount());
    for (const char *text :
         {"common", "rare", "common AND NOT rare", "rare OR other"}) {
        Query q = Query::parse(text);
        auto hits = _ranked->topK(q, 100);
        DocSet ranked_docs;
        for (const ScoredHit &hit : hits)
            ranked_docs.push_back(hit.doc);
        std::sort(ranked_docs.begin(), ranked_docs.end());
        EXPECT_EQ(ranked_docs, boolean.run(q)) << text;
    }
}

TEST_F(RankedTest, NegatedTermsDoNotScore)
{
    // "common AND NOT rare" matches docs 1, 2; 'rare' must not
    // contribute score (it cannot: matches lack it), and 'common'
    // alone gives equal scores.
    auto hits = _ranked->topK(Query::parse("common AND NOT rare"), 10);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_DOUBLE_EQ(hits[0].score, hits[1].score);
}

TEST_F(RankedTest, LengthPenaltyPrefersShorterDocs)
{
    InvertedIndex index;
    DocTable docs;
    docs.add("/short", 100);
    docs.add("/long", 1000000);
    index.addBlock(block(0, {"term"}));
    index.addBlock(block(1, {"term"}));
    RankedSearcher ranked(IndexSnapshot::seal(std::move(index)),
                          docs);
    auto hits = ranked.topK(Query::parse("term"), 10);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].doc, 0u);
    EXPECT_GT(hits[0].score, hits[1].score);
}

TEST_F(RankedTest, InvalidQueryEmpty)
{
    EXPECT_TRUE(_ranked->topK(Query::parse("("), 10).empty());
}

TEST_F(RankedTest, IdfValues)
{
    // common: df 4 of 4 -> ln(2); rare: df 2 of 4 -> ln(3).
    EXPECT_NEAR(_ranked->idf("common"), std::log(2.0), 1e-12);
    EXPECT_NEAR(_ranked->idf("rare"), std::log(3.0), 1e-12);
    EXPECT_EQ(_ranked->idf("nonexistent"), 0.0);
}

TEST_F(RankedTest, TermStatsCachedAcrossQueries)
{
    // Regression: idf() and topK() used to rebuild a PostingCursor
    // per term per call. The per-searcher cache fills on first use
    // and is bounded by the queried vocabulary — a repeated query
    // stream must not grow it.
    EXPECT_EQ(_ranked->cachedTermCount(), 0u);
    auto first = _ranked->topK(Query::parse("common OR rare"), 10);
    EXPECT_EQ(_ranked->cachedTermCount(), 2u);
    for (int i = 0; i < 50; ++i)
        _ranked->topK(Query::parse("common OR rare"), 10);
    EXPECT_EQ(_ranked->cachedTermCount(), 2u);

    // Cached answers stay identical to the first (uncached) ones.
    auto again = _ranked->topK(Query::parse("common OR rare"), 10);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(again[i].doc, first[i].doc);
        EXPECT_DOUBLE_EQ(again[i].score, first[i].score);
    }

    // Unknown terms cache too (df 0), sparing the snapshot probe.
    EXPECT_EQ(_ranked->idf("nonexistent"), 0.0);
    EXPECT_EQ(_ranked->cachedTermCount(), 3u);
    EXPECT_EQ(_ranked->idf("nonexistent"), 0.0);
    EXPECT_EQ(_ranked->cachedTermCount(), 3u);
}

TEST_F(RankedTest, TermCacheSafeUnderConcurrentQueries)
{
    // Server workers share one RankedSearcher: concurrent topK()
    // must neither race the cache nor change answers (TSan-checked
    // in the sanitizer suite).
    auto expected = _ranked->topK(Query::parse("common OR rare"), 10);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([this, &expected, &mismatches] {
            for (int i = 0; i < 50; ++i) {
                auto hits =
                    _ranked->topK(Query::parse("common OR rare"), 10);
                if (hits.size() != expected.size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t j = 0; j < hits.size(); ++j)
                    if (hits[j].doc != expected[j].doc
                        || hits[j].score != expected[j].score)
                        ++mismatches;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(_ranked->cachedTermCount(), 2u);
}

TEST(PositiveTerms, CollectsOnlyPositiveContext)
{
    Query q = Query::parse("a AND NOT b OR (c AND NOT NOT d)");
    auto terms = positiveTerms(q.root());
    EXPECT_EQ(terms,
              (std::vector<std::string>{"a", "c", "d"}));
}

TEST(PositiveTerms, Deduplicates)
{
    Query q = Query::parse("x OR x OR (x AND y)");
    auto terms = positiveTerms(q.root());
    EXPECT_EQ(terms, (std::vector<std::string>{"x", "y"}));
}

TEST(PositiveTerms, AllNegatedYieldsNothing)
{
    Query q = Query::parse("NOT (a OR b)");
    EXPECT_TRUE(positiveTerms(q.root()).empty());
}

TEST(IdfFromCounts, MatchesFormulaAndHandlesZeroDf)
{
    EXPECT_EQ(idfFromCounts(100, 0), 0.0);
    EXPECT_DOUBLE_EQ(idfFromCounts(100, 4),
                     std::log(1.0 + 100.0 / 4.0));
    EXPECT_DOUBLE_EQ(idfFromCounts(0, 1), std::log(1.0));
}

TEST_F(RankedTest, DfReportsDocumentFrequency)
{
    EXPECT_EQ(_ranked->df("common"), 4u);
    EXPECT_EQ(_ranked->df("rare"), 2u);
    EXPECT_EQ(_ranked->df("other"), 1u);
    EXPECT_EQ(_ranked->df("absent"), 0u);
}

TEST_F(RankedTest, TopKWeightedWithOwnIdfReproducesTopK)
{
    // Bit-identical, not approximately equal: the broker's whole
    // equivalence argument rests on the two paths sharing one
    // accumulation loop and one finishing pass.
    for (const char *text :
         {"common", "rare", "common OR rare", "common AND NOT other",
          "rare OR other", "(common AND rare) OR other"}) {
        Query query = Query::parse(text);
        TermWeights weights;
        for (const std::string &term : positiveTerms(query.root()))
            weights.emplace_back(term, _ranked->idf(term));
        auto expected = _ranked->topK(query, 4);
        auto got = _ranked->topKWeighted(query, 4, weights);
        ASSERT_EQ(got.size(), expected.size()) << text;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got[i].doc, expected[i].doc) << text;
            EXPECT_EQ(got[i].score, expected[i].score) << text;
        }
    }
}

TEST_F(RankedTest, TopKWeightedSkipsZeroAndUnknownTerms)
{
    Query query = Query::parse("common OR rare");
    TermWeights weights;
    weights.emplace_back("common", 0.0);    // globally unknown: df 0
    weights.emplace_back("absent", 1.5);    // not in this index
    weights.emplace_back("rare", 2.0);
    auto got = _ranked->topKWeighted(query, 4, weights);
    ASSERT_EQ(got.size(), 4u);
    // Only "rare" contributes: docs 0 and 3 outrank 1 and 2, which
    // score exactly zero.
    EXPECT_EQ(got[0].doc, 0u);
    EXPECT_EQ(got[1].doc, 3u);
    EXPECT_GT(got[1].score, 0.0);
    EXPECT_EQ(got[2].score, 0.0);
    EXPECT_EQ(got[3].score, 0.0);
}

} // namespace
} // namespace dsearch
