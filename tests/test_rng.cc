/**
 * @file
 * Unit tests for the deterministic PRNG (util/rng.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hh"

namespace dsearch {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU64() == b.nextU64())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = rng.uniform(10, 20);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 20u);
    }
}

TEST(Rng, UniformDegenerateRange)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(17);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.uniform(0, 7)];
    for (int c : counts) {
        // Expected 1000 per bucket; allow wide tolerance.
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Rng, UniformFullRangeDoesNotHang)
{
    Rng rng(23);
    std::uint64_t v = rng.uniform(0, ~0ull);
    (void)v;
    SUCCEED();
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.25))
            ++hits;
    double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SplitIsIndependent)
{
    Rng parent(5);
    Rng child = parent.split();
    Rng parent2(5);
    Rng child2 = parent2.split();
    // Same lineage -> same child stream.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(child.nextU64(), child2.nextU64());
    // Child differs from a fresh parent-seeded stream.
    Rng fresh(5);
    int equal = 0;
    for (int i = 0; i < 50; ++i)
        if (child.nextU64() == fresh.nextU64())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdShuffle)
{
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    Rng rng(13);
    std::shuffle(v.begin(), v.end(), rng);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
    EXPECT_NE(v, sorted); // astronomically unlikely to be identity
}

TEST(Rng, SplitMix64KnownBehaviour)
{
    // Two consecutive outputs from the same state differ.
    std::uint64_t state = 0;
    std::uint64_t first = splitMix64(state);
    std::uint64_t second = splitMix64(state);
    EXPECT_NE(first, second);

    // Restarting the state reproduces the stream.
    std::uint64_t state2 = 0;
    EXPECT_EQ(splitMix64(state2), first);
}

TEST(Rng, BitMixing)
{
    // Population count of xored consecutive outputs should hover
    // around 32 (good avalanche).
    Rng rng(101);
    double total = 0;
    const int n = 1000;
    std::uint64_t prev = rng.nextU64();
    for (int i = 0; i < n; ++i) {
        std::uint64_t next = rng.nextU64();
        total += __builtin_popcountll(prev ^ next);
        prev = next;
    }
    EXPECT_NEAR(total / n, 32.0, 2.0);
}

} // namespace
} // namespace dsearch
