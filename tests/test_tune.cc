/**
 * @file
 * Unit tests for the auto-tuner (tune/tuner.hh, tune/config_space.hh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fs/corpus.hh"
#include "tune/tuner.hh"

namespace dsearch {
namespace {

TEST(ConfigSpace, EnumerationCountsMatchSize)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 4, 3, 2);
    auto configs = space.enumerate();
    EXPECT_EQ(configs.size(), space.size());
    EXPECT_EQ(configs.size(), 4u * 3u * 2u);
    for (const Config &cfg : configs) {
        cfg.validate();
        EXPECT_TRUE(space.contains(cfg));
    }
}

TEST(ConfigSpace, NonJoinImplementationsHaveNoJoinerAxis)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::SharedLocked, 3, 2, 5);
    EXPECT_EQ(space.size(), 6u);
    for (const Config &cfg : space.enumerate())
        EXPECT_EQ(cfg.joiners, 0u);
}

TEST(ConfigSpace, EnumerationIsXMajorDeterministic)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedNoJoin, 2, 2, 0);
    auto configs = space.enumerate();
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].tupleString(), "(1, 1, 0)");
    EXPECT_EQ(configs[1].tupleString(), "(1, 2, 0)");
    EXPECT_EQ(configs[2].tupleString(), "(2, 1, 0)");
    EXPECT_EQ(configs[3].tupleString(), "(2, 2, 0)");
}

TEST(ConfigSpace, RandomConfigStaysInBox)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 5, 4, 2);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Config cfg = space.randomConfig(rng);
        EXPECT_TRUE(space.contains(cfg));
        cfg.validate();
    }
}

TEST(ConfigSpace, NeighborsAreAdjacentAndValid)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 5, 4, 2);
    Config center = Config::replicatedJoin(3, 2, 1);
    auto neighbors = space.neighbors(center);
    EXPECT_FALSE(neighbors.empty());
    for (const Config &n : neighbors) {
        EXPECT_TRUE(space.contains(n));
        int dist =
            std::abs(static_cast<int>(n.extractors)
                     - static_cast<int>(center.extractors))
            + std::abs(static_cast<int>(n.updaters)
                       - static_cast<int>(center.updaters))
            + std::abs(static_cast<int>(n.joiners)
                       - static_cast<int>(center.joiners));
        EXPECT_EQ(dist, 1);
    }
}

TEST(ConfigSpace, NeighborsClippedAtBoundary)
{
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedNoJoin, 3, 2, 0);
    Config corner = Config::replicatedNoJoin(1, 1);
    auto neighbors = space.neighbors(corner);
    // Only +x and +y remain.
    EXPECT_EQ(neighbors.size(), 2u);
}

TEST(ConfigSpaceDeath, EmptyBoxIsFatal)
{
    ConfigSpace space;
    space.min_extractors = 5;
    space.max_extractors = 2;
    EXPECT_EXIT(space.validate(), ::testing::ExitedWithCode(1),
                "extractor range");
}

/** Synthetic convex evaluator with known optimum at (4, 2, 1). */
class BowlEvaluator : public CostEvaluator
{
  public:
    double
    evaluate(const Config &cfg) override
    {
        ++_evaluations;
        double dx = static_cast<double>(cfg.extractors) - 4.0;
        double dy = static_cast<double>(cfg.updaters) - 2.0;
        double dz = static_cast<double>(cfg.joiners) - 1.0;
        return 10.0 + dx * dx + dy * dy + dz * dz;
    }
};

TEST(ExhaustiveTuner, FindsGlobalOptimum)
{
    BowlEvaluator evaluator;
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 8, 4, 2);
    TuneResult result = ExhaustiveTuner().tune(evaluator, space);
    EXPECT_EQ(result.best.tupleString(), "(4, 2, 1)");
    EXPECT_NEAR(result.best_sec, 10.0, 1e-12);
    EXPECT_EQ(result.evaluations, space.size());
    EXPECT_EQ(result.history.size(), space.size());
}

TEST(HillClimbTuner, FindsOptimumOnConvexSurface)
{
    BowlEvaluator evaluator;
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 8, 4, 2);
    TuneResult result = HillClimbTuner(3, 64, 5).tune(evaluator, space);
    EXPECT_EQ(result.best.tupleString(), "(4, 2, 1)");
    // Must be cheaper than exhaustive search.
    EXPECT_LT(result.evaluations, space.size());
}

TEST(RandomTuner, RespectsBudgetAndFindsGoodPoint)
{
    BowlEvaluator evaluator;
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedJoin, 8, 4, 2);
    TuneResult result = RandomTuner(40, 7).tune(evaluator, space);
    EXPECT_EQ(result.evaluations, 40u);
    // 40 of 64 points sampled: close to optimal with high odds.
    EXPECT_LE(result.best_sec, 12.0);
}

TEST(SimCostEvaluator, DeterministicWithoutNoise)
{
    PipelineSim sim(PlatformSpec::quadCore2010(),
                    WorkloadModel::fromCorpusSpec(
                        CorpusSpec::paperScaled(0.01)));
    SimCostEvaluator evaluator(sim, 1, 0.0);
    Config cfg = Config::sharedLocked(3, 1);
    EXPECT_DOUBLE_EQ(evaluator.evaluate(cfg), evaluator.evaluate(cfg));
    EXPECT_EQ(evaluator.evaluations(), 2u);
}

TEST(SimCostEvaluator, NoiseAveragesOut)
{
    PipelineSim sim(PlatformSpec::quadCore2010(),
                    WorkloadModel::fromCorpusSpec(
                        CorpusSpec::paperScaled(0.01)));
    Config cfg = Config::sharedLocked(3, 1);
    double truth = sim.run(cfg).total_sec;

    SimCostEvaluator noisy(sim, 25, 0.05, 11);
    double estimate = noisy.evaluate(cfg);
    EXPECT_NEAR(estimate, truth, truth * 0.05);
}

TEST(TunerOnSimulator, ExhaustiveBeatsWorstConfig)
{
    PipelineSim sim(PlatformSpec::octCore2010(),
                    WorkloadModel::fromCorpusSpec(
                        CorpusSpec::paperScaled(0.01)));
    SimCostEvaluator evaluator(sim);
    ConfigSpace space = ConfigSpace::paperTable(
        Implementation::ReplicatedNoJoin, 6, 3, 0);
    TuneResult result = ExhaustiveTuner().tune(evaluator, space);

    double worst = 0.0;
    for (const Evaluated &e : result.history)
        worst = std::max(worst, e.seconds);
    EXPECT_LT(result.best_sec, worst);
    EXPECT_GT(result.best.extractors, 1u)
        << "tuner should use parallelism on the 8-core platform";
}

TEST(RealCostEvaluator, RunsTheRealGenerator)
{
    auto fs = CorpusGenerator(CorpusSpec::tiny(3)).generateInMemory();
    RealCostEvaluator evaluator(*fs, "/", 1);
    double t1 = evaluator.evaluate(Config::sharedLocked(1, 0));
    double t2 = evaluator.evaluate(Config::sharedLocked(2, 1));
    EXPECT_GT(t1, 0.0);
    EXPECT_GT(t2, 0.0);
    EXPECT_EQ(evaluator.evaluations(), 2u);
}

TEST(TunerDeath, InvalidBudgetsAreFatal)
{
    EXPECT_EXIT(RandomTuner(0), ::testing::ExitedWithCode(1),
                "budget");
    EXPECT_EXIT(HillClimbTuner(0, 10), ::testing::ExitedWithCode(1),
                "restarts");
}

} // namespace
} // namespace dsearch
