/**
 * @file
 * Unit tests for logging (util/logging.hh).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/logging.hh"

namespace dsearch {
namespace {

/** Restores sink and level after each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _old = setLogSink([this](LogLevel level, const std::string &m) {
            _messages.emplace_back(level, m);
        });
        setLogLevel(LogLevel::Info);
    }

    void
    TearDown() override
    {
        setLogSink(std::move(_old));
        setLogLevel(LogLevel::Info);
    }

    std::vector<std::pair<LogLevel, std::string>> _messages;
    LogSink _old;
};

TEST_F(LoggingTest, WarnReachesSink)
{
    warn("trouble ahead");
    ASSERT_EQ(_messages.size(), 1u);
    EXPECT_EQ(_messages[0].first, LogLevel::Warn);
    EXPECT_EQ(_messages[0].second, "trouble ahead");
}

TEST_F(LoggingTest, InformReachesSink)
{
    inform("status update");
    ASSERT_EQ(_messages.size(), 1u);
    EXPECT_EQ(_messages[0].first, LogLevel::Info);
}

TEST_F(LoggingTest, LevelFiltersInform)
{
    setLogLevel(LogLevel::Warn);
    inform("should be dropped");
    warn("should pass");
    ASSERT_EQ(_messages.size(), 1u);
    EXPECT_EQ(_messages[0].second, "should pass");
}

TEST_F(LoggingTest, SilentDropsEverything)
{
    setLogLevel(LogLevel::Silent);
    inform("no");
    warn("no");
    EXPECT_TRUE(_messages.empty());
}

TEST_F(LoggingTest, LogLevelReadback)
{
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST_F(LoggingTest, SinkSwapReturnsPrevious)
{
    LogSink mine = setLogSink(nullptr); // default stderr
    // Restore our capture and make sure it still works.
    setLogSink(std::move(mine));
    warn("captured again");
    ASSERT_EQ(_messages.size(), 1u);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal bug"), "panic: internal bug");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("user error"), ::testing::ExitedWithCode(1),
                "fatal: user error");
}

} // namespace
} // namespace dsearch
