/**
 * @file
 * Unit, equivalence and concurrency tests for the scatter-gather
 * serving tier (shard/broker.hh).
 *
 * The headline contract — the acceptance criterion of the sharded
 * tier — is *bit-identical* equivalence: the same corpus built
 * unsharded and N-sharded must answer every boolean query with the
 * same DocId set and every ranked query with the same top-K, same
 * ids, same order, and the same doubles (global-idf scoring through
 * submitRankedWeighted accumulates contributions in the same order
 * the unsharded RankedSearcher does). The suite sweeps N over
 * {1, 2, 4, 7} and both placements, covering empty shards and an
 * uneven last shard.
 *
 * The fault-injection tests cover the degradation contract: a shard
 * that cannot be reached (shard.dispatch), loses its partial at
 * gather (shard.merge), or throws mid-query (query_server.execute)
 * costs exactly its own results — the broker reply comes back
 * well-formed with partial = true, never a hang or a torn merge; only
 * zero answering shards make an error.
 *
 * The concurrency tests are part of the TSan suite registered as
 * ctest check_tsan_shard_broker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "fs/memory_fs.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "shard/broker.hh"
#include "shard/shard_planner.hh"
#include "util/fault.hh"

namespace dsearch {
namespace {

/** Queries spanning the synthetic corpus vocabulary, NOTs included. */
const char *const kQueries[] = {
    "ba",
    "zu",
    "ba AND be",
    "ba OR zu",
    "ba AND NOT be",
    "NOT ba",
    "(ba AND be) OR cido",
    "zu AND NOT (ba OR be)",
};

/**
 * Shared fixture: one synthetic corpus, one unsharded reference
 * build. Each test constructs the sharded builds it needs.
 */
class BrokerEquivalenceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        CorpusGenerator gen(CorpusSpec::tiny());
        _fs = gen.generateInMemory().release();
        _root = gen.spec().root;
        _reference = new Engine::Result(
            Engine::open(*_fs, _root).threads(1).build());
    }

    static void
    TearDownTestSuite()
    {
        delete _reference;
        _reference = nullptr;
        delete _fs;
        _fs = nullptr;
    }

    static Broker
    makeBroker(std::size_t shards, ShardPlacement placement,
               BrokerOptions options = {})
    {
        ShardPlanOptions plan;
        plan.shards = shards;
        plan.placement = placement;
        return Broker(ShardPlanner::build(*_fs, _root, plan), options);
    }

    static MemoryFs *_fs;
    static std::string _root;
    static Engine::Result *_reference;
};

MemoryFs *BrokerEquivalenceTest::_fs = nullptr;
std::string BrokerEquivalenceTest::_root;
Engine::Result *BrokerEquivalenceTest::_reference = nullptr;

TEST_F(BrokerEquivalenceTest, BooleanMatchesUnshardedSearcher)
{
    Searcher direct(_reference->snapshot,
                    _reference->docs.docCount());
    for (std::size_t n : {1u, 2u, 4u, 7u}) {
        for (ShardPlacement placement : {ShardPlacement::RoundRobin,
                                         ShardPlacement::HashByPath}) {
            Broker broker = makeBroker(n, placement);
            ASSERT_EQ(broker.shardCount(), n);
            for (const char *text : kQueries) {
                Query query = Query::parse(text);
                BrokerResponse reply = broker.submit(query).get();
                ASSERT_TRUE(reply.ok) << text;
                EXPECT_FALSE(reply.partial) << text;
                EXPECT_EQ(reply.shards_answered, n) << text;
                EXPECT_EQ(reply.hits, direct.run(query))
                    << "n=" << n << " query=" << text;
            }
        }
    }
}

TEST_F(BrokerEquivalenceTest, RankedTopKBitIdenticalToUnsharded)
{
    RankedSearcher direct(_reference->snapshot, _reference->docs);
    const std::size_t all = _reference->docs.docCount();
    for (std::size_t n : {1u, 2u, 4u, 7u}) {
        for (ShardPlacement placement : {ShardPlacement::RoundRobin,
                                         ShardPlacement::HashByPath}) {
            Broker broker = makeBroker(n, placement);
            for (const char *text : kQueries) {
                Query query = Query::parse(text);
                // k small, k mid, k = every document: the merge must
                // reproduce the full global order, not just a prefix.
                for (std::size_t k : {std::size_t{3}, std::size_t{10},
                                      all}) {
                    auto expected = direct.topK(query, k);
                    BrokerResponse reply =
                        broker.submitRanked(query, k).get();
                    ASSERT_TRUE(reply.ok) << text;
                    ASSERT_EQ(reply.ranked.size(), expected.size())
                        << "n=" << n << " k=" << k << " " << text;
                    for (std::size_t i = 0; i < expected.size(); ++i) {
                        EXPECT_EQ(reply.ranked[i].doc,
                                  expected[i].doc)
                            << "n=" << n << " k=" << k << " i=" << i
                            << " " << text;
                        // Bit-identical, not nearly-equal: global
                        // weights + shared accumulation order.
                        EXPECT_EQ(reply.ranked[i].score,
                                  expected[i].score)
                            << "n=" << n << " k=" << k << " i=" << i
                            << " " << text;
                    }
                }
            }
        }
    }
}

TEST_F(BrokerEquivalenceTest, UnevenLastShardStillExact)
{
    // tiny() has a file count that 7 does not divide; round-robin
    // leaves the last shards one document short. docCount() must
    // still cover everything and NOT queries must still complement
    // exactly.
    Broker broker = makeBroker(7, ShardPlacement::RoundRobin);
    EXPECT_EQ(broker.docCount(), _reference->docs.docCount());
    Searcher direct(_reference->snapshot,
                    _reference->docs.docCount());
    Query query = Query::parse("NOT zu");
    BrokerResponse reply = broker.submit(query).get();
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.hits, direct.run(query));
}

/** Hand-built corpus where every score is easy to reason about. */
class BrokerSmallTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _fs.addFile("/c/a.txt", "alpha beta gamma");
        _fs.addFile("/c/b.txt", "alpha beta");
        _fs.addFile("/c/c.txt", "beta gamma delta");
        _fs.addFile("/c/d.txt", "alpha delta");
        _fs.addFile("/c/e.txt", "gamma");
        _fs.addFile("/c/f.txt", "delta epsilon");
    }

    Broker
    makeBroker(std::size_t shards, BrokerOptions options = {})
    {
        ShardPlanOptions plan;
        plan.shards = shards;
        return Broker(ShardPlanner::build(_fs, "/c", plan), options);
    }

    MemoryFs _fs;
};

TEST_F(BrokerSmallTest, DispatchFaultYieldsWellFormedPartial)
{
    Broker broker = makeBroker(3);
    Engine::Result reference = Engine::open(_fs, "/c").threads(1).build();
    Searcher direct(reference.snapshot, reference.docs.docCount());
    DocSet full = direct.run(Query::parse("alpha OR delta"));

    ScopedFault fault("shard.dispatch", {.fire_limit = 1});
    BrokerResponse reply =
        broker.submit(Query::parse("alpha OR delta")).get();
    EXPECT_EQ(fault.fires(), 1u);
    ASSERT_TRUE(reply.ok);
    EXPECT_TRUE(reply.partial);
    EXPECT_EQ(reply.shards_answered, 2u);
    // Degraded, never torn: a strict subset of the full answer, each
    // hit a genuine global match.
    EXPECT_LT(reply.hits.size(), full.size());
    for (DocId doc : reply.hits)
        EXPECT_TRUE(std::binary_search(full.begin(), full.end(), doc));
    EXPECT_EQ(broker.stats().partial, 1u);
}

TEST_F(BrokerSmallTest, MergeFaultDropsOneShardsPartial)
{
    Broker broker = makeBroker(3);
    ScopedFault fault("shard.merge", {.fire_limit = 1});
    BrokerResponse reply = broker.submit(Query::parse("beta")).get();
    ASSERT_TRUE(reply.ok);
    EXPECT_TRUE(reply.partial);
    EXPECT_EQ(reply.shards_answered, 2u);
}

TEST_F(BrokerSmallTest, AllShardsUnreachableIsErrorNotHang)
{
    Broker broker = makeBroker(3);
    ScopedFault fault("shard.dispatch", {.fire_limit = 3});
    BrokerResponse reply = broker.submit(Query::parse("alpha")).get();
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "no shard answered");
    EXPECT_TRUE(reply.hits.empty());
    EXPECT_EQ(broker.stats().rejected, 1u);
    EXPECT_EQ(broker.stats().completed, 0u);

    // The tier heals once the fault clears.
    disarmAllFaults();
    EXPECT_TRUE(broker.submit(Query::parse("alpha")).get().ok);
}

TEST_F(BrokerSmallTest, ThrowingShardCostsOnlyItsOwnResults)
{
    Broker broker = makeBroker(3);
    ScopedFault fault("query_server.execute", {.fire_limit = 1});
    BrokerResponse reply = broker.submit(Query::parse("beta")).get();
    ASSERT_TRUE(reply.ok);
    EXPECT_TRUE(reply.partial);
    EXPECT_EQ(reply.shards_answered, 2u);
}

TEST_F(BrokerSmallTest, PartialRankedStillScoresOnTheGlobalScale)
{
    Broker broker = makeBroker(3);
    Engine::Result reference = Engine::open(_fs, "/c").threads(1).build();
    RankedSearcher direct(reference.snapshot, reference.docs);
    auto expected = direct.topK(Query::parse("alpha OR beta"), 6);

    ScopedFault fault("shard.dispatch", {.fire_limit = 1});
    BrokerResponse reply =
        broker.submitRanked(Query::parse("alpha OR beta"), 6).get();
    ASSERT_TRUE(reply.ok);
    EXPECT_TRUE(reply.partial);
    // Every returned hit carries exactly the score the unsharded
    // searcher assigns that document: df aggregation covers all
    // shards whether or not they answered, so a degraded reply is a
    // subsequence of the full ranking, not a rescored one.
    for (const ScoredHit &hit : reply.ranked) {
        bool found = false;
        for (const ScoredHit &exp : expected) {
            if (exp.doc == hit.doc) {
                EXPECT_EQ(hit.score, exp.score);
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "doc " << hit.doc;
    }
}

TEST_F(BrokerSmallTest, InvalidQueryRejectedUpFront)
{
    Broker broker = makeBroker(2);
    BrokerResponse reply = broker.submit(Query::parse("AND AND")).get();
    EXPECT_FALSE(reply.ok);
    EXPECT_FALSE(reply.error.empty());
    EXPECT_EQ(broker.stats().rejected, 1u);
}

TEST_F(BrokerSmallTest, ExpiredDeadlineRejectedBeforeScatter)
{
    BrokerOptions options;
    options.deadline_sec = 1e-9; // expired by the time it dispatches
    Broker broker = makeBroker(2, options);
    BrokerResponse reply = broker.submit(Query::parse("alpha")).get();
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "deadline expired");
    EXPECT_EQ(broker.stats().timed_out, 1u);
}

TEST_F(BrokerSmallTest, ShutdownDrainsAdmittedAndRefusesLater)
{
    Broker broker = makeBroker(2);
    std::vector<std::future<BrokerResponse>> inflight;
    for (int i = 0; i < 32; ++i)
        inflight.push_back(broker.submit(Query::parse("alpha")));
    broker.shutdown();
    for (auto &future : inflight)
        EXPECT_TRUE(future.get().ok); // every admitted query answered

    EXPECT_FALSE(broker.accepting());
    BrokerResponse late = broker.submit(Query::parse("alpha")).get();
    EXPECT_FALSE(late.ok);
    EXPECT_EQ(late.error, "broker has shut down");
}

TEST_F(BrokerSmallTest, StatsRollUpAcrossShards)
{
    const std::size_t shards = 3;
    Broker broker = makeBroker(shards);
    const int boolean_queries = 8;
    const int ranked_queries = 4;
    for (int i = 0; i < boolean_queries; ++i)
        EXPECT_TRUE(broker.submit(Query::parse("alpha")).get().ok);
    for (int i = 0; i < ranked_queries; ++i)
        EXPECT_TRUE(
            broker.submitRanked(Query::parse("beta"), 3).get().ok);

    BrokerStats stats = broker.stats();
    EXPECT_EQ(stats.completed,
              static_cast<std::uint64_t>(boolean_queries
                                         + ranked_queries));
    EXPECT_EQ(stats.partial, 0u);
    EXPECT_GT(stats.qps, 0.0);
    EXPECT_EQ(stats.latency.count,
              static_cast<std::size_t>(boolean_queries
                                       + ranked_queries));
    ASSERT_EQ(stats.shards.size(), shards);

    // Every query fans out to every shard, so the merged histogram
    // holds shards x queries observations — and matches the sum of
    // the per-shard completed counters exactly.
    std::uint64_t shard_completed = 0;
    for (const ServerStats &s : stats.shards)
        shard_completed += s.completed;
    EXPECT_EQ(shard_completed,
              stats.completed * static_cast<std::uint64_t>(shards));
    EXPECT_EQ(stats.shard_latency.count,
              static_cast<std::size_t>(shard_completed));

    broker.resetStats();
    BrokerStats fresh = broker.stats();
    EXPECT_EQ(fresh.completed, 0u);
    EXPECT_EQ(fresh.shard_latency.count, 0u);
    for (const ServerStats &s : fresh.shards)
        EXPECT_EQ(s.completed, 0u);
}

TEST_F(BrokerEquivalenceTest, ConcurrentMixedTrafficStaysExact)
{
    Searcher direct(_reference->snapshot,
                    _reference->docs.docCount());
    RankedSearcher ranked(_reference->snapshot, _reference->docs);

    BrokerOptions options;
    options.merge_workers = 3;
    Broker broker = makeBroker(4, ShardPlacement::RoundRobin,
                               options);

    const int threads = 4;
    const int per_thread = 25;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                const char *text =
                    kQueries[static_cast<std::size_t>(t + i)
                             % (sizeof(kQueries)
                                / sizeof(kQueries[0]))];
                Query query = Query::parse(text);
                if (i % 2 == 0) {
                    BrokerResponse reply =
                        broker.submit(query).get();
                    if (!reply.ok || reply.hits != direct.run(query))
                        ++mismatches;
                } else {
                    BrokerResponse reply =
                        broker.submitRanked(query, 5).get();
                    auto expected = ranked.topK(query, 5);
                    bool same = reply.ok
                                && reply.ranked.size()
                                       == expected.size();
                    for (std::size_t j = 0; same && j < expected.size();
                         ++j)
                        same = reply.ranked[j].doc == expected[j].doc
                               && reply.ranked[j].score
                                      == expected[j].score;
                    if (!same)
                        ++mismatches;
                }
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(broker.stats().completed,
              static_cast<std::uint64_t>(threads * per_thread));
}

TEST_F(BrokerSmallTest, ConcurrentSubmittersSurviveShutdown)
{
    Broker broker = makeBroker(2);
    std::atomic<int> resolved{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&] {
            for (int i = 0; i < 40; ++i) {
                // Either a real answer or a clean shutdown refusal —
                // the future must always become ready.
                broker.submit(Query::parse("alpha")).get();
                ++resolved;
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    broker.shutdown();
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(resolved.load(), 120);
}

} // namespace
} // namespace dsearch
