#!/usr/bin/env python3
"""Perf regression gate over BENCH_micro.json.

Runs the bench_micro binary (JSON-emit mode: the google-benchmark
suite is filtered out, only the Stage 2+3 comparison runs), then
compares the fresh numbers against the committed baseline and fails
on a throughput regression beyond the threshold.

Gated metrics (higher is better):
  zero_copy.tokens_per_sec
  zero_copy.postings_per_sec

The committed baseline carries the absolute throughput of whatever
machine produced it, so the legacy pipeline is used as a speed
canary: when fresh legacy throughput lands within --canary of the
baseline's, the machines are comparable and absolute throughput is
gated. On a visibly different machine the gate falls back to the
relative zero-copy-vs-legacy speedup, which cancels machine speed.

Known blind spot: a change that slows BOTH pipelines by more than
--canary on the baseline's own machine is indistinguishable from
slower hardware, and the speedup fallback cancels it out. The gate
prints a loud warning in that case; regenerate the baseline on the
current machine (run bench_micro, commit BENCH_micro.json) to
restore absolute gating, which does catch shared-path regressions.

The sealed-segment compression ratio (raw bytes over compressed
block bytes) is gated absolutely: it is machine-independent, so
fresh sealed_segment.compression_ratio must stay >= --min-ratio
(default 2.0) regardless of the canary.

The posting-codec head-to-head is gated the same way: the
posting_decode.packed_vs_varint throughput ratio (bit-packed SIMD
block decode over delta+varint, same lists, same machine) must stay
>= --min-decode-ratio (default 2.0), and intersection.speedup (bulk
SIMD AND over the per-doc seekGE merge) must stay >=
--min-intersect-speedup (default 1.2); both are ratios from one
machine, so they hold anywhere. The absolute bit-packed decode
throughput (posting_decode.packed_postings_per_sec, ~4e9 on the
baseline box) is gated against --min-decode-pps (default 1e9) only
when the canary says the machines are comparable, and reported as
advisory otherwise.

query_exec.speedup — the planner/operator execution path (compile a
QueryPlan per query, evaluate its operator tree: what every serving
tier runs) over the legacy recursive AST walk on the same synthetic
snapshot — is also a same-machine ratio, gated absolutely at
>= --min-query-exec-speedup (default 0.95): the unified execution
layer may not cost more than 5% against the code it replaced.

Advisory metrics (reported, never fatal):
alloc_bytes_per_block_ratio, sealed_segment.seal_postings_per_sec,
sealed_segment.decode_postings_per_sec, plus whichever of
absolute/speedup was not gated.

The binary is run --repeats times and the best run is kept, which
filters scheduler noise out of the gate.

With --server-bench, the query-serving benchmark (bench_search_server)
also runs; its BENCH_server.json "search_server" section is compared
to the committed baseline's. The serving speedup — persistent
QueryServer QPS over the naive fresh-pool-per-query path on the same
corpus and machine — is a ratio, so it is gated absolutely
(>= --min-server-speedup, default 1.0); absolute server QPS is gated
against the baseline only when the canary says the machines are
comparable, and reported as advisory otherwise.

With --overload (requires --server-bench), the benchmark's overload
section is additionally gated on the machine-independent
graceful-degradation properties: under a 2x-capacity open-loop load
some queries complete AND some are refused (shed + timed_out > 0 —
the overload went somewhere accountable), while the p99 latency of
the *accepted* queries stays within --overload-p99-factor times the
configured deadline (default 2.0: the deadline bounds queue wait, so
accepted answers cannot be arbitrarily stale).

With --live (requires --server-bench), the benchmark's live_index
section is gated on the zero-downtime-churn properties, all
machine-independent: QPS during corpus churn stays within
--min-churn-ratio of the steady-state QPS on the same corpus and
machine (default 0.8 — background scanning, delta building and
compaction may not eat the serving capacity), hot-swaps actually
happened during the churn window (swaps > 0 — the ratio was measured
against real republishing, not an idle pipeline), and the churn p99
stays under --live-p99-ms (default 100 ms — a hot-swap must never
pause in-flight queries; a lock-holding publish would show up here
first). Update-visibility latency is reported as advisory: its floor
is the configured scan interval, a tuning choice rather than a
regression signal.

With --shard-bench, the sharded serving-tier benchmark
(bench_shard_broker) also runs; adding --shard gates its
BENCH_shard.json "shard_broker" section. The machine-independent
properties are always fatal: under the skewed-hotness flood no
submitted query may be lost (every future resolves), some queries
must complete, some replies must be partial (the hot shard's refusals
degraded them instead of hanging the broker), the hot shard must have
actually shed or timed out work, and the accepted-query p99 must stay
under a loose sanity ceiling (10x the summed shard + broker admission
deadlines — a miss there means a query bypassed admission control
entirely). The sharp gates — QPS(4 shards) >= --min-shard-scaling x
QPS(1 shard), and accepted p99 within --shard-p99-factor of the
summed deadlines — only bind when the canary says the machines are
comparable AND the fresh host has >= 4 cores; a 1-core box runs N
shard workers on one CPU, so its scaling curve is flat by
construction and both are reported as advisory.

Usage:
  check_bench.py --baseline BENCH_micro.json --bench ./bench_micro \
                 [--server-bench ./bench_search_server] [--overload] \
                 [--shard-bench ./bench_shard_broker] [--shard] \
                 [--threshold 0.10] [--repeats 2]

Exit status: 0 ok, 1 regression, 2 harness failure.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

GATED = [
    ("zero_copy", "tokens_per_sec"),
    ("zero_copy", "postings_per_sec"),
]
CANARY = ("legacy", "tokens_per_sec")
ADVISORY = ["alloc_bytes_per_block_ratio"]


def run_bench(bench, workdir):
    """Run bench_micro in workdir; return its parsed JSON output."""
    cmd = [os.path.abspath(bench), "--benchmark_filter=^$"]
    result = subprocess.run(
        cmd, cwd=workdir, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, timeout=600)
    if result.returncode != 0:
        sys.stderr.write(result.stdout.decode(errors="replace"))
        raise RuntimeError(f"{cmd} exited {result.returncode}")
    path = os.path.join(workdir, "BENCH_micro.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def best_of(runs):
    """Keep the run with the highest primary gated throughput."""
    return max(runs, key=lambda r: r["zero_copy"]["tokens_per_sec"])


def run_server_bench(bench, workdir):
    """Run bench_search_server in workdir; return its JSON section.

    The binary exits 1 when the server fails to beat the naive path —
    that verdict is re-derived from the JSON by the gate below, so
    both 0 and 1 count as a successful measurement here.
    """
    cmd = [os.path.abspath(bench)]
    result = subprocess.run(
        cmd, cwd=workdir, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, timeout=600)
    if result.returncode not in (0, 1):
        sys.stderr.write(result.stdout.decode(errors="replace"))
        raise RuntimeError(f"{cmd} exited {result.returncode}")
    path = os.path.join(workdir, "BENCH_server.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)["search_server"]


def run_shard_bench(bench, workdir):
    """Run bench_shard_broker in workdir; return its JSON section.

    The binary exits 1 when the degradation properties fail — that
    verdict is re-derived from the JSON by gate_shard, so both 0 and
    1 count as a successful measurement here.
    """
    cmd = [os.path.abspath(bench)]
    result = subprocess.run(
        cmd, cwd=workdir, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, timeout=600)
    if result.returncode not in (0, 1):
        sys.stderr.write(result.stdout.decode(errors="replace"))
        raise RuntimeError(f"{cmd} exited {result.returncode}")
    path = os.path.join(workdir, "BENCH_shard.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)["shard_broker"]


def gate_shard(fresh, comparable, min_scaling, p99_factor):
    """Gate the shard_broker section; return failed metric names.

    The lossless/degraded/absorbed properties are counters and hold
    on any machine. The scaling ratio and the sharp p99 bound need
    real parallel hardware: they bind only when the canary says the
    machines are comparable AND the fresh host has >= 4 cores.
    """
    failures = []
    skew = fresh.get("skew")
    if skew is None:
        print("check_bench: shard bench emitted no skew section",
              file=sys.stderr)
        return ["shard_broker.skew"]

    cores = fresh.get("cores", 0)
    sharp = comparable and cores >= 4

    lost = skew["lost"]
    status = "OK" if lost == 0 else "REGRESSION"
    if lost != 0:
        failures.append("shard_broker.skew.lost")
    print(f"shard_broker.skew.lost: {lost} of {skew['submitted']} "
          f"(gate == 0: every submitted query must resolve) {status}")

    completed = skew["completed"]
    status = "OK" if completed > 0 else "REGRESSION"
    if completed == 0:
        failures.append("shard_broker.skew.completed")
    print(f"shard_broker.skew.completed: {completed} "
          f"(gate > 0) {status}")

    partial = skew["partial"]
    status = "OK" if partial > 0 else "REGRESSION"
    if partial == 0:
        failures.append("shard_broker.skew.partial")
    print(f"shard_broker.skew.partial: {partial} "
          f"(gate > 0: a flooded hot shard must degrade replies to "
          f"partial, not hang the broker) {status}")

    absorbed = skew["hot_shard_shed"] + skew["hot_shard_timed_out"]
    status = "OK" if absorbed > 0 else "REGRESSION"
    if absorbed == 0:
        failures.append("shard_broker.skew.hot_shard_shed+timed_out")
    print(f"shard_broker.skew.hot_shard_shed+timed_out: "
          f"{skew['hot_shard_shed']}+{skew['hot_shard_timed_out']} "
          f"(gate > 0: the flood must be absorbed as counted "
          f"refusals) {status}")

    # Both admission layers bound the accepted tail by construction;
    # the loose 10x ceiling is machine-independent (it catches a
    # query path that bypasses admission control), the sharp factor
    # needs hardware that can actually keep up.
    budget_ms = skew["deadline_ms"] + skew["broker_deadline_ms"]
    p99_ms = skew["accepted_p99_ms"]
    ceiling_ms = 10.0 * budget_ms
    status = "OK" if p99_ms <= ceiling_ms else "REGRESSION"
    if p99_ms > ceiling_ms:
        failures.append("shard_broker.skew.accepted_p99_ms")
    print(f"shard_broker.skew.accepted_p99_ms: {p99_ms:.3g} "
          f"(sanity gate <= 10 x {budget_ms:.3g} ms admission "
          f"budget = {ceiling_ms:.3g}) {status}")

    bound_ms = p99_factor * budget_ms
    status = "OK" if sharp else "advisory"
    if sharp and p99_ms > bound_ms:
        status = "REGRESSION"
        failures.append("shard_broker.skew.accepted_p99_ms.sharp")
    print(f"shard_broker.skew.accepted_p99_ms (sharp): {p99_ms:.3g} "
          f"(gate <= {p99_factor:.3g} x {budget_ms:.3g} ms = "
          f"{bound_ms:.3g}; binds on comparable hosts with >= 4 "
          f"cores, fresh has {cores}) {status}")

    ratio = fresh["scaling_ratio"]
    status = "OK" if sharp else "advisory"
    if sharp and ratio < min_scaling:
        status = "REGRESSION"
        failures.append("shard_broker.scaling_ratio")
    print(f"shard_broker.scaling_ratio: {ratio:.3g} "
          f"(QPS(4) {fresh['qps_4']:.3g} / QPS(1) "
          f"{fresh['qps_1']:.3g}, gate >= {min_scaling:.3g}; binds "
          f"on comparable hosts with >= 4 cores, fresh has {cores}) "
          f"{status}")

    print(f"shard_broker.skew.refused (advisory): "
          f"{skew.get('refused', 0)} of {skew['submitted']} "
          f"(broker admission control under the flood)")
    print(f"shard_broker.skew.offered_qps (advisory): "
          f"{skew['offered_qps']:.3g}, antagonist "
          f"{skew['antagonist_queries']} direct hot-shard queries")
    return failures


def gate_server(fresh, baseline, comparable, threshold, min_speedup):
    """Gate the search_server section; return failed metric names."""
    failures = []

    speedup_now = fresh["speedup_vs_naive"]
    status = "OK"
    if speedup_now < min_speedup:
        status = "REGRESSION"
        failures.append("search_server.speedup_vs_naive")
    print(f"search_server.speedup_vs_naive: fresh "
          f"{speedup_now:.3g} (gate >= {min_speedup:.3g}, "
          f"machine-independent) {status}")

    base = baseline.get("search_server")
    if base is None:
        print("search_server: no baseline section; absolute QPS "
              "not compared (commit one to enable)")
        return failures

    for metric in ("server_qps", "server_qps_replicated"):
        if metric not in base or metric not in fresh:
            continue
        delta = (fresh[metric] - base[metric]) / base[metric]
        status = "OK" if comparable else "advisory"
        if comparable and delta < -threshold:
            status = "REGRESSION"
            failures.append(f"search_server.{metric}")
        print(f"search_server.{metric}: baseline {base[metric]:.3g} "
              f"-> fresh {fresh[metric]:.3g} ({delta:+.1%}) {status}")

    for metric in ("naive_qps", "open_loop_qps", "p50_ms", "p95_ms",
                   "p99_ms"):
        base_value = base.get(metric)
        now = fresh.get(metric)
        if now is None:
            continue
        base_text = (f"{base_value:.3g}" if base_value is not None
                     else "n/a")
        print(f"search_server.{metric} (advisory): baseline "
              f"{base_text} -> fresh {now:.3g}")
    return failures


def gate_overload(fresh, p99_factor):
    """Gate the overload section; return failed metric names.

    Every property here is machine-independent (counters and a
    latency-to-deadline ratio), so no canary/baseline comparison is
    involved.
    """
    failures = []
    section = fresh.get("overload")
    if section is None:
        print("check_bench: server bench emitted no overload section",
              file=sys.stderr)
        return ["search_server.overload"]

    completed = section["completed"]
    refused = section["shed"] + section["timed_out"]
    deadline_ms = section["deadline_ms"]
    p99_ms = section["accepted_p99_ms"]
    bound_ms = p99_factor * deadline_ms

    status = "OK" if completed > 0 else "REGRESSION"
    if completed == 0:
        failures.append("search_server.overload.completed")
    print(f"search_server.overload.completed: {completed} "
          f"(gate > 0) {status}")

    status = "OK" if refused > 0 else "REGRESSION"
    if refused == 0:
        failures.append("search_server.overload.shed+timed_out")
    print(f"search_server.overload.shed+timed_out: "
          f"{section['shed']}+{section['timed_out']} "
          f"(gate > 0: a 2x-capacity load must be partly refused) "
          f"{status}")

    status = "OK" if p99_ms <= bound_ms else "REGRESSION"
    if p99_ms > bound_ms:
        failures.append("search_server.overload.accepted_p99_ms")
    print(f"search_server.overload.accepted_p99_ms: {p99_ms:.3g} "
          f"(gate <= {p99_factor:.3g} x {deadline_ms:.3g} ms "
          f"deadline = {bound_ms:.3g}) {status}")

    print(f"search_server.overload.offered_qps (advisory): "
          f"{section['offered_qps']:.3g}")
    return failures


def gate_live(fresh, min_ratio, p99_ms):
    """Gate the live_index section; return failed metric names.

    Every property is machine-independent: a QPS ratio from one
    machine and one corpus, a counter, and an absolute latency bound
    far above a healthy swap's cost.
    """
    failures = []
    section = fresh.get("live_index")
    if section is None:
        print("check_bench: server bench emitted no live_index "
              "section", file=sys.stderr)
        return ["search_server.live_index"]

    ratio = section["churn_ratio"]
    status = "OK" if ratio >= min_ratio else "REGRESSION"
    if ratio < min_ratio:
        failures.append("search_server.live_index.churn_ratio")
    print(f"search_server.live_index.churn_ratio: "
          f"{ratio:.3g} (churn {section['churn_qps']:.3g} / steady "
          f"{section['steady_qps']:.3g} QPS, gate >= {min_ratio:.3g})"
          f" {status}")

    swaps = section["swaps"]
    status = "OK" if swaps > 0 else "REGRESSION"
    if swaps == 0:
        failures.append("search_server.live_index.swaps")
    print(f"search_server.live_index.swaps: {swaps} "
          f"(gate > 0: churn must actually republish) {status}")

    churn_p99 = section["churn_p99_ms"]
    status = "OK" if churn_p99 <= p99_ms else "REGRESSION"
    if churn_p99 > p99_ms:
        failures.append("search_server.live_index.churn_p99_ms")
    print(f"search_server.live_index.churn_p99_ms: {churn_p99:.3g} "
          f"(gate <= {p99_ms:.3g}: hot-swaps must not pause queries) "
          f"{status}")

    print(f"search_server.live_index.visibility_ms (advisory): "
          f"mean {section['visibility_ms_mean']:.3g}, max "
          f"{section['visibility_ms_max']:.3g} "
          f"(floor = the scan interval)")
    print(f"search_server.live_index.writes_per_sec (advisory): "
          f"{section['writes_per_sec']:.3g}, merges "
          f"{section['merges']}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--bench", required=True,
                        help="bench_micro binary")
    parser.add_argument("--server-bench",
                        help="bench_search_server binary (optional)")
    parser.add_argument("--min-server-speedup", type=float,
                        default=1.0,
                        help="minimum QueryServer-vs-naive QPS ratio "
                             "(absolute gate, default 1.0)")
    parser.add_argument("--overload", action="store_true",
                        help="also gate the server bench's overload "
                             "section (graceful degradation under "
                             "2x-capacity load; machine-independent)")
    parser.add_argument("--overload-p99-factor", type=float,
                        default=2.0,
                        help="accepted-query p99 must stay within "
                             "this multiple of the configured "
                             "deadline (default 2.0)")
    parser.add_argument("--shard-bench",
                        help="bench_shard_broker binary (optional)")
    parser.add_argument("--shard", action="store_true",
                        help="gate the shard bench's shard_broker "
                             "section (lossless degradation under a "
                             "skewed hot-shard flood, plus the "
                             "scaling curve on multi-core hosts)")
    parser.add_argument("--min-shard-scaling", type=float,
                        default=1.5,
                        help="minimum QPS(4 shards) / QPS(1 shard); "
                             "binds only on comparable hosts with "
                             ">= 4 cores (default 1.5)")
    parser.add_argument("--shard-p99-factor", type=float, default=3.0,
                        help="sharp accepted-p99 bound as a multiple "
                             "of the summed shard + broker admission "
                             "deadlines; binds only on comparable "
                             "hosts with >= 4 cores (default 3.0)")
    parser.add_argument("--live", action="store_true",
                        help="also gate the server bench's live_index "
                             "section (QPS under corpus churn vs "
                             "steady state; machine-independent)")
    parser.add_argument("--min-churn-ratio", type=float, default=0.8,
                        help="minimum churn-QPS / steady-QPS ratio "
                             "(default 0.8)")
    parser.add_argument("--live-p99-ms", type=float, default=100.0,
                        help="maximum query p99 during churn, ms "
                             "(default 100: bounds swap pauses)")
    parser.add_argument("--server-threshold", type=float,
                        default=0.25,
                        help="fatal relative regression for absolute "
                             "server QPS (default 0.25: serving "
                             "benches schedule many threads and are "
                             "noisier than the single-thread micro)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fatal relative regression (default 0.10)")
    parser.add_argument("--canary", type=float, default=0.15,
                        help="legacy-throughput delta beyond which "
                             "the machines are treated as different "
                             "and only the speedup ratio is gated")
    parser.add_argument("--repeats", type=int, default=2,
                        help="bench runs; best one is gated")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="minimum sealed-segment compression "
                             "ratio (absolute gate, default 2.0)")
    parser.add_argument("--min-decode-ratio", type=float, default=2.0,
                        help="minimum bit-packed-vs-varint decode "
                             "throughput ratio (absolute gate, "
                             "machine-independent, default 2.0)")
    parser.add_argument("--min-decode-pps", type=float, default=1e9,
                        help="minimum bit-packed decode postings/sec; "
                             "binds only on comparable hosts "
                             "(default 1e9)")
    parser.add_argument("--min-intersect-speedup", type=float,
                        default=1.2,
                        help="minimum bulk-vs-merge intersection "
                             "speedup (absolute gate, "
                             "machine-independent, default 1.2)")
    parser.add_argument("--min-query-exec-speedup", type=float,
                        default=0.95,
                        help="minimum planner-vs-legacy query "
                             "execution speedup (absolute gate, "
                             "machine-independent, default 0.95)")
    args = parser.parse_args()

    if args.overload and not args.server_bench:
        parser.error("--overload requires --server-bench")
    if args.live and not args.server_bench:
        parser.error("--live requires --server-bench")
    if args.shard and not args.shard_bench:
        parser.error("--shard requires --shard-bench")

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    try:
        with tempfile.TemporaryDirectory() as workdir:
            runs = [run_bench(args.bench, workdir)
                    for _ in range(max(1, args.repeats))]
            server_fresh = None
            if args.server_bench:
                server_runs = [run_server_bench(args.server_bench,
                                                workdir)
                               for _ in range(max(1, args.repeats))]
                # Per-metric best-of: the run with the best absolute
                # QPS is not always the run with the best speedup
                # ratio (a lucky naive window deflates it), and both
                # gates should see the binary's best behaviour.
                server_fresh = max(server_runs,
                                   key=lambda r: r["server_qps"])
                server_fresh = dict(server_fresh)
                server_fresh["speedup_vs_naive"] = max(
                    r["speedup_vs_naive"] for r in server_runs)
                # Same reasoning for the churn ratio: it compares two
                # windows of one run, so take the run where the
                # scheduler interfered least.
                live_runs = [r["live_index"] for r in server_runs
                             if "live_index" in r]
                if live_runs:
                    server_fresh["live_index"] = max(
                        live_runs, key=lambda s: s["churn_ratio"])
            shard_fresh = None
            if args.shard_bench:
                shard_runs = [run_shard_bench(args.shard_bench,
                                              workdir)
                              for _ in range(max(1, args.repeats))]
                # The scaling ratio compares two widths of one run,
                # so keep the run where the scheduler interfered
                # least with the wide configuration.
                shard_fresh = max(shard_runs,
                                  key=lambda r: r["scaling_ratio"])
    except Exception as exc:  # noqa: BLE001 - harness failure path
        print(f"check_bench: could not run bench: {exc}",
              file=sys.stderr)
        return 2
    fresh = best_of(runs)

    # Machine comparability: the legacy pipeline barely changes, so a
    # large delta there means different hardware, not a regression.
    canary_base = baseline[CANARY[0]][CANARY[1]]
    canary_now = fresh[CANARY[0]][CANARY[1]]
    canary_delta = (canary_now - canary_base) / canary_base
    comparable = abs(canary_delta) <= args.canary
    print(f"canary {CANARY[0]}.{CANARY[1]}: baseline "
          f"{canary_base:.3g} -> fresh {canary_now:.3g} "
          f"({canary_delta:+.1%}) -> machines "
          f"{'comparable' if comparable else 'DIFFER'}")
    if not comparable and canary_delta < 0:
        print("check_bench: WARNING: legacy throughput dropped beyond "
              "the canary window. If this is the machine that "
              "produced the baseline, a shared-path regression may "
              "be hiding behind the speedup fallback — regenerate "
              "BENCH_micro.json here to restore absolute gating.",
              file=sys.stderr)

    failures = []
    for section, metric in GATED:
        base = baseline[section][metric]
        now = fresh[section][metric]
        delta = (now - base) / base
        status = "OK" if comparable else "advisory"
        if comparable and delta < -args.threshold:
            status = "REGRESSION"
            failures.append(f"{section}.{metric}")
        print(f"{section}.{metric}: baseline {base:.3g} -> "
              f"fresh {now:.3g} ({delta:+.1%}) {status}")

    # Speedup cancels machine speed: gate it when absolute numbers
    # cannot be trusted, report it otherwise.
    base_speedup = baseline["speedup"]
    now_speedup = fresh["speedup"]
    speedup_delta = (now_speedup - base_speedup) / base_speedup
    status = "advisory" if comparable else "OK"
    if not comparable and speedup_delta < -args.threshold:
        status = "REGRESSION"
        failures.append("speedup")
    print(f"speedup: baseline {base_speedup:.3g} -> fresh "
          f"{now_speedup:.3g} ({speedup_delta:+.1%}) {status}")

    # Compression ratio: machine-independent, so gated absolutely
    # against --min-ratio rather than against the baseline.
    sealed = fresh.get("sealed_segment")
    if sealed is None:
        print("check_bench: fresh run lacks sealed_segment metrics",
              file=sys.stderr)
        return 2
    ratio = sealed["compression_ratio"]
    base_sealed = baseline.get("sealed_segment", {})
    base_ratio = base_sealed.get("compression_ratio")
    status = "OK"
    if ratio < args.min_ratio:
        status = "REGRESSION"
        failures.append("sealed_segment.compression_ratio")
    print(f"sealed_segment.compression_ratio: baseline "
          f"{base_ratio if base_ratio is not None else float('nan'):.3g}"
          f" -> fresh {ratio:.3g} (gate >= {args.min_ratio:.3g}) "
          f"{status}")
    for metric in ("compressed_bytes_per_posting",
                   "seal_postings_per_sec",
                   "decode_postings_per_sec"):
        base = base_sealed.get(metric)
        now = sealed.get(metric)
        if now is None:
            continue
        base_text = f"{base:.3g}" if base is not None else "n/a"
        print(f"sealed_segment.{metric} (advisory): baseline "
              f"{base_text} -> fresh {now:.3g}")

    # Posting-codec head-to-head: ratios are machine-independent and
    # gated absolutely; the absolute packed decode rate binds only on
    # comparable hosts.
    decode = fresh.get("posting_decode")
    intersect = fresh.get("intersection")
    if decode is None or intersect is None:
        print("check_bench: fresh run lacks posting_decode/"
              "intersection metrics", file=sys.stderr)
        return 2
    base_decode = baseline.get("posting_decode", {})
    base_intersect = baseline.get("intersection", {})

    ratio = decode["packed_vs_varint"]
    status = "OK" if ratio >= args.min_decode_ratio else "REGRESSION"
    if ratio < args.min_decode_ratio:
        failures.append("posting_decode.packed_vs_varint")
    base_text = base_decode.get("packed_vs_varint")
    print(f"posting_decode.packed_vs_varint: baseline "
          f"{base_text if base_text is not None else float('nan'):.3g}"
          f" -> fresh {ratio:.3g} (gate >= "
          f"{args.min_decode_ratio:.3g}, simd "
          f"{decode.get('simd_level', '?')}) {status}")

    pps = decode["packed_postings_per_sec"]
    status = "OK" if comparable else "advisory"
    if comparable and pps < args.min_decode_pps:
        status = "REGRESSION"
        failures.append("posting_decode.packed_postings_per_sec")
    base = base_decode.get("packed_postings_per_sec")
    base_text = f"{base:.3g}" if base is not None else "n/a"
    print(f"posting_decode.packed_postings_per_sec: baseline "
          f"{base_text} -> fresh {pps:.3g} (gate >= "
          f"{args.min_decode_pps:.3g}; binds on comparable hosts) "
          f"{status}")
    print(f"posting_decode.varint_postings_per_sec (advisory): "
          f"fresh {decode['varint_postings_per_sec']:.3g}")

    speedup = intersect["speedup"]
    status = ("OK" if speedup >= args.min_intersect_speedup
              else "REGRESSION")
    if speedup < args.min_intersect_speedup:
        failures.append("intersection.speedup")
    base = base_intersect.get("speedup")
    base_text = f"{base:.3g}" if base is not None else "n/a"
    print(f"intersection.speedup: baseline {base_text} -> fresh "
          f"{speedup:.3g} (bulk {intersect['bulk_postings_per_sec']:.3g}"
          f" / merge {intersect['merge_postings_per_sec']:.3g} "
          f"postings/s, gate >= {args.min_intersect_speedup:.3g}) "
          f"{status}")

    # Planner/operator execution vs the legacy AST walk: a ratio from
    # one binary on one machine, so it gates absolutely everywhere.
    # The plan side compiles per query (the production shape); the
    # gate asserts the refactor never costs more than 5% end to end.
    query_exec = fresh.get("query_exec")
    if query_exec is not None:
        speedup = query_exec["speedup"]
        status = ("OK" if speedup >= args.min_query_exec_speedup
                  else "REGRESSION")
        if speedup < args.min_query_exec_speedup:
            failures.append("query_exec.speedup")
        base = baseline.get("query_exec", {}).get("speedup")
        base_text = f"{base:.3g}" if base is not None else "n/a"
        print(f"query_exec.speedup: baseline {base_text} -> fresh "
              f"{speedup:.3g} (plan {query_exec['plan_qps']:.3g} / "
              f"legacy {query_exec['legacy_qps']:.3g} qps, gate >= "
              f"{args.min_query_exec_speedup:.3g}) {status}")

    for metric in ADVISORY:
        base = baseline.get(metric)
        now = fresh.get(metric)
        if base is None or now is None:
            continue
        print(f"{metric} (advisory): baseline {base:.3g} -> "
              f"fresh {now:.3g}")

    if server_fresh is not None:
        failures += gate_server(server_fresh, baseline, comparable,
                                args.server_threshold,
                                args.min_server_speedup)
        if args.overload:
            failures += gate_overload(server_fresh,
                                      args.overload_p99_factor)
        if args.live:
            failures += gate_live(server_fresh,
                                  args.min_churn_ratio,
                                  args.live_p99_ms)

    if shard_fresh is not None and args.shard:
        failures += gate_shard(shard_fresh, comparable,
                               args.min_shard_scaling,
                               args.shard_p99_factor)

    if failures:
        # Each metric's own line above states the gate it failed
        # (micro --threshold, server --server-threshold, or an
        # absolute floor); don't misattribute a single threshold.
        print(f"check_bench: gated metrics regressed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("check_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
