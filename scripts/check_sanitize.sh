#!/usr/bin/env bash
# Configure, build and ctest a sanitizer-instrumented tree.
#
# Usage: scripts/check_sanitize.sh [address|thread|undefined] \
#            [build-dir] [test-name...]
#
# Defaults to AddressSanitizer in <repo>/build-asan (thread ->
# build-tsan, undefined -> build-ubsan). The perf-labelled ctest entry
# (check_bench) is excluded: sanitizer overhead would trip a
# throughput gate that is only meaningful on uninstrumented builds.
#
# With test names (e.g. test_query_server test_blocking_queue), only
# those targets are built and only those tests run — the fast path
# the check_tsan_query_server ctest entry uses to TSan the serving
# loop without instrumenting the whole tree. Pass "" as build-dir to
# keep the default.
set -euo pipefail

SANITIZER="${1:-address}"
case "$SANITIZER" in
  address)   DEFAULT_DIR=build-asan ;;
  thread)    DEFAULT_DIR=build-tsan ;;
  undefined) DEFAULT_DIR=build-ubsan ;;
  *)
    echo "check_sanitize: unknown sanitizer '$SANITIZER'" \
         "(want address, thread, or undefined)" >&2
    exit 2
    ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${2:-}"
[ -n "$BUILD_DIR" ] || BUILD_DIR="$ROOT/$DEFAULT_DIR"
shift $(( $# > 2 ? 2 : $# ))
TESTS=("$@")
JOBS="$(nproc 2>/dev/null || echo 4)"

# DSEARCH_FORCE_SCALAR=ON in the environment pins the scalar posting
# codepaths in the nested tree (the check_asan_scalar_postings leg).
cmake -B "$BUILD_DIR" -S "$ROOT" \
      -DDSEARCH_SANITIZE="$SANITIZER" \
      -DDSEARCH_FORCE_SCALAR="${DSEARCH_FORCE_SCALAR:-OFF}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [ "${#TESTS[@]}" -eq 0 ]; then
  cmake --build "$BUILD_DIR" -j "$JOBS"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -LE perf
else
  cmake --build "$BUILD_DIR" -j "$JOBS" --target "${TESTS[@]}"
  REGEX="^($(IFS='|'; echo "${TESTS[*]}"))$"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
        -LE perf -R "$REGEX"
fi

echo "check_sanitize: $SANITIZER tree clean ($BUILD_DIR)"
