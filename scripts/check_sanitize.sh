#!/usr/bin/env bash
# Configure, build and ctest a sanitizer-instrumented tree.
#
# Usage: scripts/check_sanitize.sh [address|thread|undefined] [build-dir]
#
# Defaults to AddressSanitizer in <repo>/build-asan (thread ->
# build-tsan, undefined -> build-ubsan). The perf-labelled ctest entry
# (check_bench) is excluded: sanitizer overhead would trip a
# throughput gate that is only meaningful on uninstrumented builds.
set -euo pipefail

SANITIZER="${1:-address}"
case "$SANITIZER" in
  address)   DEFAULT_DIR=build-asan ;;
  thread)    DEFAULT_DIR=build-tsan ;;
  undefined) DEFAULT_DIR=build-ubsan ;;
  *)
    echo "check_sanitize: unknown sanitizer '$SANITIZER'" \
         "(want address, thread, or undefined)" >&2
    exit 2
    ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${2:-$ROOT/$DEFAULT_DIR}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$ROOT" \
      -DDSEARCH_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -LE perf

echo "check_sanitize: $SANITIZER tree clean ($BUILD_DIR)"
